"""The HTTP/JSON query server wrapping one shared adaptive engine.

Stdlib only (``http.server.ThreadingHTTPServer``): a long-lived process
speaking a small wire protocol over the engine's public surface.

Endpoints
---------

========  ==============================  ===========================================
method    path                            action
========  ==============================  ===========================================
POST      ``/query``                      run SQL; returns a result handle + page 0
GET       ``/results/<id>``               metadata of a stored result resource
GET       ``/results/<id>/pages/<n>``     one bounded page of a stored result
DELETE    ``/results/<id>``               drop a stored result resource
GET       ``/tables``                     list attached tables
POST      ``/tables``                     attach a file (idempotent for identical re-attach)
GET       ``/tables/<name>``              schema + per-column warmth of one table
DELETE    ``/tables/<name>``              detach
GET       ``/stats``                      engine/memory/admission/result counters
GET       ``/health``                     liveness probe
========  ==============================  ===========================================

Every error response is the :meth:`repro.errors.ReproError.to_payload`
form under the class's HTTP status — malformed SQL (400), unknown tables
or expired results (404), overload (429 + ``Retry-After``), query
timeouts (504) and engine faults (5xx) are distinguishable on the wire
by their stable ``error`` code.  Results never fully serialize into one
response: ``POST /query`` returns the first page plus a result id, and
the rest is fetched page by page (page size capped server-side).
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from shutil import rmtree
from typing import Any

from repro.core.engine import NoDBEngine
from repro.errors import (
    BadRequestError,
    CatalogError,
    DrainingError,
    InternalServerError,
    NotFoundError,
    QueryTimeoutError,
    ReproError,
    TableConflictError,
)
from repro.result import QueryResult
from repro.server.admission import AdmissionController
from repro.server.results import ResultManager

#: Hard ceiling on ``page_size`` a client may request; the server clamps
#: rather than errors so a greedy client degrades instead of failing.
DEFAULT_PAGE_SIZE_CAP = 10_000
DEFAULT_PAGE_SIZE = 1_000


def _page_payload(meta: dict, page: QueryResult, n: int) -> dict:
    body = page.to_json_dict()
    body["page"] = n
    body["num_pages"] = meta["num_pages"]
    body["result_id"] = meta["result_id"]
    body["total_rows"] = meta["num_rows"]
    return body


class ReproServer:
    """One engine, many clients: the HTTP serving layer.

    ``port=0`` binds an ephemeral port (read :attr:`url` after
    construction).  :meth:`start` serves on a background thread;
    :meth:`serve_forever` serves on the calling thread; :meth:`close`
    shuts down the listener, drains the query pool and releases
    server-owned scratch space (the engine itself is *not* closed unless
    ``owns_engine=True`` — callers may keep using it in-process).
    """

    def __init__(
        self,
        engine: NoDBEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        default_page_size: int = DEFAULT_PAGE_SIZE,
        page_size_cap: int = DEFAULT_PAGE_SIZE_CAP,
        max_inflight: int = 8,
        max_inflight_per_client: int = 4,
        query_timeout_s: float = 30.0,
        result_ttl_s: float = 300.0,
        max_results: int = 256,
        results_dir: Path | str | None = None,
        owns_engine: bool = False,
    ) -> None:
        if default_page_size <= 0 or page_size_cap <= 0:
            raise ValueError("page sizes must be positive")
        if query_timeout_s <= 0:
            raise ValueError("query_timeout_s must be positive")
        self.engine = engine
        self.owns_engine = owns_engine
        self.default_page_size = min(default_page_size, page_size_cap)
        self.page_size_cap = page_size_cap
        self.query_timeout_s = query_timeout_s
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            max_inflight_per_client=max_inflight_per_client,
        )
        # Result resources live beside the persistent adaptive store when
        # one is configured (they are durable, addressable state of the
        # same kind); otherwise in server-owned scratch space.
        self._owns_results_dir = False
        if results_dir is None:
            if engine.config.store_dir is not None and engine.config.persistent_store:
                results_dir = engine.config.store_dir / "results"
            else:
                results_dir = Path(tempfile.mkdtemp(prefix="repro-results-"))
                self._owns_results_dir = True
        self.results = ResultManager(
            results_dir,
            memory=engine.memory,
            ttl_s=result_ttl_s,
            max_results=max_results,
            fault_plan=engine.fault_plan,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-query"
        )
        self._started_at = time.time()
        self._requests = 0
        self._requests_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._serving = False
        self._closed = False
        # Graceful drain: when set, mutating routes are rejected with
        # 503 + Retry-After while in-flight requests run to completion.
        self._draining = False
        self._drained_requests = 0
        self._active_requests = 0
        self._active_cv = threading.Condition()
        # Serializes close(): a drain thread and the owner's __exit__
        # may race here, and the loser must *block* until teardown is
        # genuinely complete, not skip past a half-closed server.
        self._close_lock = threading.Lock()
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.repro = self  # type: ignore[attr-defined]

    # ------------------------------------------------------------ address

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ---------------------------------------------------------- lifecycle

    def start(self) -> "ReproServer":
        """Serve on a daemon thread; returns self (for chaining)."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._http.serve_forever,
                name="repro-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._serving = True
        self._http.serve_forever()

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_request(self) -> None:
        with self._active_cv:
            self._active_requests += 1

    def end_request(self) -> None:
        with self._active_cv:
            self._active_requests -= 1
            if self._active_requests <= 0:
                self._active_cv.notify_all()

    def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown: finish in-flight requests, refuse new work.

        Sets the draining flag (mutating routes then answer 503 +
        ``Retry-After``; ``/health`` reports ``draining``), waits until
        every in-flight request has been answered (up to ``timeout_s``;
        ``None`` waits indefinitely), then closes the listener and the
        query pool.  Returns ``True`` when everything in flight finished
        before the deadline.  Idempotent and safe from any thread except
        one currently inside :meth:`serve_forever`.
        """
        with self._active_cv:
            self._draining = True
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        drained = True
        with self._active_cv:
            while self._active_requests > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        drained = False
                        break
                self._active_cv.wait(timeout=remaining)
        self.close()
        return drained

    def close(self) -> None:
        with self._close_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._closed:
            return
        self._closed = True
        # shutdown() blocks on serve_forever()'s exit handshake, so it
        # must only run once serving actually began.
        if self._serving:
            self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._pool.shutdown(wait=True)
        if self._owns_results_dir:
            self.results.clear()
            rmtree(self.results.directory, ignore_errors=True)
        if self.owns_engine:
            self.engine.close()

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- dispatch

    def dispatch(
        self, method: str, parts: list[str], body: dict, client: str
    ) -> tuple[int, dict, dict[str, str]]:
        """Route one request; returns (status, payload, extra headers)."""
        with self._requests_lock:
            self._requests += 1
        if self.engine.fault_plan is not None:
            # Simulates an unexpected handler crash: the injected
            # OSError is not a ReproError, so the wire adapter maps it
            # to the stable ``internal_error`` payload.
            self.engine.fault_plan.check("server.request")
        if self._draining and self._refused_while_draining(method, parts):
            with self._requests_lock:
                self._drained_requests += 1
            raise DrainingError(
                "server is draining; retry against a replacement process",
                retry_after_s=1.0,
            )
        if parts == ["query"] and method == "POST":
            return self._post_query(body, client)
        if len(parts) >= 1 and parts[0] == "results":
            return self._results_route(method, parts[1:])
        if len(parts) >= 1 and parts[0] == "tables":
            return self._tables_route(method, parts[1:], body)
        if parts == ["stats"] and method == "GET":
            return 200, self.stats(), {}
        if parts == ["health"] and method == "GET":
            status = "draining" if self._draining else "ok"
            return 200, {"status": status, "uptime_s": time.time() - self._started_at}, {}
        raise NotFoundError(f"no route {method} /{'/'.join(parts)}")

    @staticmethod
    def _refused_while_draining(method: str, parts: list[str]) -> bool:
        """New work is refused during drain; reads keep being served.

        ``POST /query`` and catalog mutation start new work; fetching
        pages of already-computed results (and deleting them) remains
        allowed so clients can finish collecting what they started.
        """
        if method == "POST":
            return True
        return method == "DELETE" and bool(parts) and parts[0] == "tables"

    # -------------------------------------------------------------- query

    def _clamped_page_size(self, body: dict) -> int:
        raw = body.get("page_size", self.default_page_size)
        if not isinstance(raw, int) or isinstance(raw, bool) or raw <= 0:
            raise BadRequestError(f"page_size must be a positive integer, got {raw!r}")
        return min(raw, self.page_size_cap)

    def _post_query(
        self, body: dict, client: str
    ) -> tuple[int, dict, dict[str, str]]:
        sql = body.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise BadRequestError("body must carry a non-empty 'sql' string")
        page_size = self._clamped_page_size(body)
        self.admission.acquire(client)
        # The slot is held until the engine is genuinely done with the
        # query — a timed-out request must keep occupying capacity while
        # its query still runs, or timeouts would defeat backpressure.
        # If submit itself fails (pool shut down mid-drain), the done
        # callback never runs, so the slot must be released here or it
        # leaks forever.
        try:
            future: Future[QueryResult] = self._pool.submit(self.engine.query, sql)
        except BaseException:
            self.admission.release(client)
            raise
        future.add_done_callback(lambda _f: self.admission.release(client))
        try:
            result = future.result(timeout=self.query_timeout_s)
        except FutureTimeoutError:
            future.cancel()  # clean no-op if it already started
            raise QueryTimeoutError(
                f"query exceeded the server timeout of {self.query_timeout_s:g}s"
            ) from None
        meta = self.results.store(result, page_size)
        payload = {
            "result": meta,
            "page": _page_payload(meta, result.page(0, page_size), 0),
            "stats": dict(result.stats),
        }
        return 200, payload, {}

    # ------------------------------------------------------------ results

    def _results_route(
        self, method: str, rest: list[str]
    ) -> tuple[int, dict, dict[str, str]]:
        if len(rest) == 1 and method == "GET":
            return 200, self.results.meta(rest[0]), {}
        if len(rest) == 1 and method == "DELETE":
            self.results.delete(rest[0])
            return 200, {"deleted": rest[0]}, {}
        if len(rest) == 3 and rest[1] == "pages" and method == "GET":
            try:
                n = int(rest[2])
            except ValueError:
                raise BadRequestError(f"page number must be an integer, got {rest[2]!r}")
            meta, page = self.results.page(rest[0], n)
            return 200, _page_payload(meta, page, n), {}
        raise NotFoundError(f"no route {method} /results/{'/'.join(rest)}")

    # ------------------------------------------------------------- tables

    def _tables_route(
        self, method: str, rest: list[str], body: dict
    ) -> tuple[int, dict, dict[str, str]]:
        if not rest:
            if method == "GET":
                return 200, {"tables": self.engine.tables()}, {}
            if method == "POST":
                return self._attach(body)
        elif len(rest) == 1:
            if method == "GET":
                return 200, self._describe_table(rest[0]), {}
            if method == "DELETE":
                self.engine.detach(rest[0])
                return 200, {"detached": rest[0]}, {}
        raise NotFoundError(f"no route {method} /tables/{'/'.join(rest)}")

    @staticmethod
    def _attach_options(body: dict) -> dict[str, Any]:
        fixed_widths = body.get("fixed_widths")
        if fixed_widths is not None:
            try:
                fixed_widths = tuple(int(w) for w in fixed_widths)
            except (TypeError, ValueError):
                raise BadRequestError(
                    f"fixed_widths must be a list of integers, got {fixed_widths!r}"
                )
        return {
            "delimiter": body.get("delimiter", ","),
            "format": body.get("format"),
            "fixed_widths": fixed_widths,
        }

    def _attach(self, body: dict) -> tuple[int, dict, dict[str, str]]:
        name = body.get("name")
        path = body.get("path")
        if not isinstance(name, str) or not name:
            raise BadRequestError("attach body must carry a table 'name'")
        if not isinstance(path, str) or not path:
            raise BadRequestError("attach body must carry a file 'path'")
        options = self._attach_options(body)
        # Idempotent for concurrent/repeated identical attaches: many
        # clients pointing the server at the same file must converge on
        # one attachment, not race to a duplicate-attach error.
        if self._matches_existing(name, path, options):
            return 200, {"attached": name, "existing": True}, {}
        try:
            self.engine.attach(name, path, **options)
        except CatalogError as exc:
            # Lost a race to an identical attach, or a true conflict.
            if self._matches_existing(name, path, options):
                return 200, {"attached": name, "existing": True}, {}
            raise TableConflictError(
                f"table {name!r} is already attached with different "
                "options or a different file"
            ) from exc
        return 201, {"attached": name, "existing": False}, {}

    def _matches_existing(self, name: str, path: str, options: dict) -> bool:
        try:
            entry = self.engine.catalog.get(name)
        except ReproError:
            return False
        file = entry.file
        fmt = options["format"]
        have_fmt = file.format if isinstance(file.format, (str, type(None))) else "custom"
        return (
            file.path == Path(path)
            and file.delimiter == options["delimiter"]
            and (have_fmt or None) == (fmt or None)
            and (file.fixed_widths or None)
            == (options["fixed_widths"] or None)
        )

    def _describe_table(self, name: str) -> dict:
        entry = self.engine.catalog.get(name)
        schema = self.engine.schema_of(name)
        fmt = entry.file.format
        info: dict[str, Any] = {
            "name": entry.name,
            "path": str(entry.file.path),
            "format": fmt if isinstance(fmt, (str, type(None))) else "custom",
            "delimiter": entry.file.delimiter,
            "columns": [{"name": n, "dtype": d} for n, d in schema],
        }
        # Warmth: what the adaptive store holds right now, read under the
        # table's shared lock so a concurrent load cannot tear the view.
        with entry.rwlock.read_locked():
            table = entry.table
            if table is None:
                info["warmth"] = {"state": "cold", "nrows": None, "loaded": {}}
            else:
                loaded = {
                    pc.name: {
                        "rows": int(pc.loaded_count),
                        "fully_loaded": bool(pc.is_fully_loaded),
                    }
                    for pc in table.columns.values()
                    if pc.loaded_count > 0
                }
                info["warmth"] = {
                    "state": "warm" if loaded else "cold",
                    "nrows": table.nrows,
                    "loaded": loaded,
                }
            info["positional_map_columns"] = sorted(
                entry.positional_map.field_offsets
            )
        return info

    # -------------------------------------------------------------- stats

    def stats(self) -> dict:
        """The ``/stats`` payload (all sections JSON-safe snapshots)."""
        return {
            "engine": self.engine.stats.snapshot(),
            "memory": {
                "resident_bytes": self.engine.memory.resident_bytes,
                "mapped_bytes": self.engine.memory.mapped_bytes,
                "budget_bytes": self.engine.memory.budget_bytes,
                "evictions": self.engine.memory.stats.evictions,
            },
            "admission": self.admission.snapshot(),
            "results": self.results.snapshot(),
            "server": {
                "uptime_s": time.time() - self._started_at,
                "requests": self._requests,
                "page_size_cap": self.page_size_cap,
                "default_page_size": self.default_page_size,
                "query_timeout_s": self.query_timeout_s,
                "draining": self._draining,
                "drained_requests": self._drained_requests,
                "active_requests": self._active_requests,
            },
        }


class _Handler(BaseHTTPRequestHandler):
    """Thin wire adapter: parse, dispatch, serialize — no logic."""

    protocol_version = "HTTP/1.1"
    #: Quiet by default; ``ReproServer`` is often embedded in tests.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def _app(self) -> ReproServer:
        return self.server.repro  # type: ignore[attr-defined]

    def _client_id(self) -> str:
        return self.headers.get("X-Repro-Client") or self.client_address[0]

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise BadRequestError("request body must be a JSON object")
        return body

    def _handle(self, method: str) -> None:
        app = self._app
        # In-flight accounting brackets the *whole* exchange (dispatch
        # and response write): drain() waits on it, so a request being
        # answered when SIGTERM lands always completes.
        app.begin_request()
        try:
            try:
                parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
                body = self._read_body() if method in ("POST", "PUT") else {}
                status, payload, headers = app.dispatch(
                    method, parts, body, self._client_id()
                )
            except ReproError as exc:
                headers = {}
                retry_after = getattr(exc, "retry_after_s", None)
                if retry_after is not None:
                    headers["Retry-After"] = f"{max(1, round(retry_after))}"
                self._send_json(exc.http_status, exc.to_payload(), headers)
                return
            except Exception as exc:  # never leak a raw traceback to the wire
                mapped = InternalServerError(f"{exc.__class__.__name__}: {exc}")
                self._send_json(mapped.http_status, mapped.to_payload())
                return
            self._send_json(status, payload, headers)
        finally:
            app.end_request()

    def _send_json(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")


__all__ = ["ReproServer", "DEFAULT_PAGE_SIZE", "DEFAULT_PAGE_SIZE_CAP"]
