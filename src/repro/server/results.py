"""Query results as addressable resources.

"Why we should respect analysis results as data": a finished query result
is not an ephemeral response body but a first-class resource — written to
disk under a stable id, retrievable later (and by other clients), paged
on demand, and garbage-collected by TTL and LRU pressure rather than by
the lifetime of one HTTP exchange.

:class:`ResultManager` owns a directory of ``<id>.json`` resources (one
strict-JSON file per result: metadata + the
:meth:`repro.result.QueryResult.to_json_dict` body).  A RAM copy of each
result is kept for fast paging and **charged to the engine's
MemoryManager** like any adaptive-store fragment: under memory pressure
the RAM copy is dropped (the disk resource remains and is reloaded on
the next access), exactly the paper's "throw it away, the only cost is
reloading" lifetime rule.  Expired or LRU-evicted resources disappear
from disk too; a later fetch gets :class:`UnknownResultError` — result
resources are disposable, like the adaptive store itself.

A manager pointed at an existing directory re-indexes the resources it
finds there, so persisted results survive a server restart.
"""

from __future__ import annotations

import json
import secrets
import threading
import time
from contextlib import suppress
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.errors import UnknownResultError
from repro.faults import FaultPlan
from repro.result import QueryResult
from repro.storage.memory import MemoryManager

#: MemoryManager namespace for result-resource RAM copies; the fragment
#: key is ``(_MEMORY_TABLE, result_id)`` so result charges can never
#: collide with ``(table, column)`` adaptive-store fragments.
_MEMORY_TABLE = "@results"


def result_ram_bytes(result: QueryResult) -> int:
    """Approximate heap footprint of a result's columns."""
    total = 0
    for col in result.columns:
        if col.dtype.kind == "O":
            total += sum(len(str(v)) for v in col) + 8 * len(col)
        else:
            total += int(col.nbytes)
    return total


@dataclass
class _Entry:
    """In-memory index record of one stored result resource."""

    result_id: str
    meta: dict
    expires_at: float
    last_access: float
    #: RAM copy; ``None`` after a memory-pressure spill (disk remains).
    result: Optional[QueryResult] = None
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class ResultManager:
    """Directory of paged, TTL/LRU-evicted query-result resources."""

    def __init__(
        self,
        directory: Path | str,
        *,
        memory: MemoryManager | None = None,
        ttl_s: float = 300.0,
        max_results: int = 256,
        clock: Callable[[], float] = time.time,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        if max_results <= 0:
            raise ValueError(f"max_results must be positive, got {max_results}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.memory = memory
        self.ttl_s = ttl_s
        self.max_results = max_results
        self._clock = clock
        self.fault_plan = fault_plan
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        #: Leaf lock for counters bumped from MemoryManager droppers
        #: (which run under the manager's lock; taking ``self._lock``
        #: there would invert the ``self._lock -> memory`` order).
        self._counter_lock = threading.Lock()
        self.stored = 0
        self.expired = 0
        self.lru_evicted = 0
        self.ram_spills = 0
        self.disk_reloads = 0
        self.write_failures = 0
        self.unlink_failures = 0
        self._reindex()

    # ------------------------------------------------------------- layout

    def _path(self, result_id: str) -> Path:
        return self.directory / f"{result_id}.json"

    def _reindex(self) -> None:
        """Adopt resources an earlier server left in the directory."""
        now = self._clock()
        for path in sorted(self.directory.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                meta = payload["meta"]
                result_id = meta["result_id"]
            except (OSError, ValueError, KeyError, TypeError):
                continue  # damaged resource: ignore, never crash startup
            if meta.get("expires_at", 0) <= now:
                path.unlink(missing_ok=True)
                continue
            self._entries[result_id] = _Entry(
                result_id=result_id,
                meta=meta,
                expires_at=float(meta["expires_at"]),
                last_access=now,
            )

    # -------------------------------------------------------------- store

    def store(self, result: QueryResult, page_size: int) -> dict:
        """Persist a finished result as a resource; return its metadata."""
        result_id = secrets.token_hex(8)
        now = self._clock()
        expires_at = now + self.ttl_s
        meta = {
            "result_id": result_id,
            "num_rows": result.num_rows,
            "num_columns": result.num_columns,
            "names": list(result.names),
            "dtypes": result.to_json_dict()["dtypes"],
            "page_size": page_size,
            "num_pages": result.num_pages(page_size),
            "created_at": now,
            "expires_at": expires_at,
        }
        body = json.dumps(
            {"meta": meta, "result": result.to_json_dict()}, allow_nan=False
        )
        path = self._path(result_id)
        tmp = path.with_suffix(".tmp")
        try:
            if self.fault_plan is not None:
                self.fault_plan.check("results.write")
            tmp.write_text(body, encoding="utf-8")
            tmp.replace(path)
        except OSError:
            # Full or broken result disk degrades the resource to
            # RAM-only: the client still gets its result id and pages;
            # it just won't survive a memory-pressure spill or restart.
            with suppress(OSError):
                tmp.unlink(missing_ok=True)
            with self._counter_lock:
                self.write_failures += 1
        entry = _Entry(
            result_id=result_id,
            meta=meta,
            expires_at=expires_at,
            last_access=now,
            result=result,
        )
        with self._lock:
            self._entries[result_id] = entry
            self.stored += 1
            self._charge_ram(entry, result)
            self._purge_locked(now)
        return dict(meta)

    def _charge_ram(self, entry: _Entry, result: QueryResult) -> None:
        if self.memory is None:
            return

        def spill(entry=entry):
            # Runs under the MemoryManager lock: touch only the entry
            # (GIL-atomic attribute store) and a leaf counter lock.
            entry.result = None
            with self._counter_lock:
                self.ram_spills += 1

        self.memory.register(
            (_MEMORY_TABLE, entry.result_id), result_ram_bytes(result), spill
        )

    # -------------------------------------------------------------- fetch

    def _live_entry(self, result_id: str, now: float) -> _Entry:
        """Look up a non-expired entry (lock held by caller)."""
        entry = self._entries.get(result_id)
        if entry is not None and entry.expires_at <= now:
            self._drop_locked(entry, counter="expired")
            entry = None
        if entry is None:
            raise UnknownResultError(
                f"no stored result {result_id!r} (unknown, expired or evicted)"
            )
        entry.last_access = now
        return entry

    def meta(self, result_id: str) -> dict:
        """Metadata of a stored result (404-shaped error when gone)."""
        now = self._clock()
        with self._lock:
            self._purge_locked(now)
            return dict(self._live_entry(result_id, now).meta)

    def get(self, result_id: str) -> QueryResult:
        """The full result — RAM copy, or reloaded from its resource file."""
        now = self._clock()
        with self._lock:
            self._purge_locked(now)
            entry = self._live_entry(result_id, now)
        with entry.lock:  # one reload even under concurrent page fetches
            result = entry.result
            if result is None:
                result = self._reload(entry)
        if self.memory is not None:
            self.memory.touch((_MEMORY_TABLE, entry.result_id))
        return result

    def page(self, result_id: str, n: int) -> tuple[dict, QueryResult]:
        """Page ``n`` of a stored result, with its metadata."""
        meta = self.meta(result_id)
        result = self.get(result_id)
        try:
            page = result.page(n, int(meta["page_size"]))
        except IndexError as exc:
            raise UnknownResultError(str(exc)) from None
        return meta, page

    def _reload(self, entry: _Entry) -> QueryResult:
        """Re-read a spilled result from disk and re-charge its RAM copy."""
        try:
            if self.fault_plan is not None:
                self.fault_plan.check("results.read")
            payload = json.loads(self._path(entry.result_id).read_text(encoding="utf-8"))
            result = QueryResult.from_json_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            raise UnknownResultError(
                f"stored result {entry.result_id!r} is gone or damaged"
            ) from None
        entry.result = result
        with self._counter_lock:
            self.disk_reloads += 1
        with self._lock:
            self._charge_ram(entry, result)
        return result

    # ----------------------------------------------------------- lifecycle

    def list_ids(self) -> list[str]:
        now = self._clock()
        with self._lock:
            self._purge_locked(now)
            return sorted(self._entries)

    def delete(self, result_id: str) -> None:
        """Explicitly drop a resource (404-shaped error when gone)."""
        now = self._clock()
        with self._lock:
            entry = self._live_entry(result_id, now)
            self._drop_locked(entry)

    def purge(self) -> None:
        """Drop expired resources and enforce the LRU cap."""
        with self._lock:
            self._purge_locked(self._clock())

    def _purge_locked(self, now: float) -> None:
        for entry in [e for e in self._entries.values() if e.expires_at <= now]:
            self._drop_locked(entry, counter="expired")
        while len(self._entries) > self.max_results:
            victim = min(self._entries.values(), key=lambda e: e.last_access)
            self._drop_locked(victim, counter="lru_evicted")

    def _drop_locked(self, entry: _Entry, counter: str | None = None) -> None:
        self._entries.pop(entry.result_id, None)
        entry.result = None
        if self.memory is not None:
            self.memory.forget((_MEMORY_TABLE, entry.result_id))
        try:
            if self.fault_plan is not None:
                self.fault_plan.check("results.unlink")
            self._path(entry.result_id).unlink(missing_ok=True)
        except OSError:
            # A failed unlink must not wedge GC: the index entry is
            # already gone, so the resource is unreachable either way;
            # the orphan file is retried by a later reindex/expiry pass.
            with self._counter_lock:
                self.unlink_failures += 1
        if counter is not None:
            setattr(self, counter, getattr(self, counter) + 1)

    def clear(self) -> int:
        """Drop everything; returns how many resources were removed."""
        with self._lock:
            entries = list(self._entries.values())
            for entry in entries:
                self._drop_locked(entry)
            return len(entries)

    def snapshot(self) -> dict:
        """JSON-safe counters for the ``/stats`` endpoint."""
        with self._lock:
            held = len(self._entries)
            ram_resident = sum(1 for e in self._entries.values() if e.result is not None)
        with self._counter_lock:
            spills, reloads = self.ram_spills, self.disk_reloads
            write_failures = self.write_failures
            unlink_failures = self.unlink_failures
        return {
            "results_held": held,
            "results_ram_resident": ram_resident,
            "stored": self.stored,
            "expired": self.expired,
            "lru_evicted": self.lru_evicted,
            "ram_spills": spills,
            "disk_reloads": reloads,
            "write_failures": write_failures,
            "unlink_failures": unlink_failures,
        }


__all__ = ["ResultManager", "result_ram_bytes"]
