"""Query results.

A :class:`QueryResult` is a small columnar result set: named NumPy arrays
plus conveniences for tests and interactive use (row tuples, dict export,
pretty printing).  All engines and baselines in this repository return this
type, which is what lets the property tests assert that every loading
policy produces byte-identical answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class QueryResult:
    """Columnar result set."""

    names: list[str]
    columns: list[np.ndarray]
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.names) != len(self.columns):
            raise ValueError(
                f"{len(self.names)} names but {len(self.columns)} columns"
            )
        lengths = {len(c) for c in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged result: column lengths {sorted(lengths)}")

    # ------------------------------------------------------------- access

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[self.names.index(name)]
        except ValueError:
            raise KeyError(f"no result column {name!r}; have {self.names}") from None

    def rows(self) -> list[tuple]:
        return [tuple(col[i] for col in self.columns) for i in range(self.num_rows)]

    def scalar(self):
        """The single value of a 1x1 result (aggregate convenience)."""
        if self.num_rows != 1 or self.num_columns != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, have {self.num_rows}x{self.num_columns}"
            )
        return self.columns[0][0]

    def to_dict(self) -> dict[str, list]:
        return {n: list(c) for n, c in zip(self.names, self.columns)}

    # ---------------------------------------------------------- comparison

    def approx_equal(self, other: "QueryResult", rel: float = 1e-9) -> bool:
        """Value equality with float tolerance, ignoring stats."""
        if self.names != other.names or self.num_rows != other.num_rows:
            return False
        for a, b in zip(self.columns, other.columns):
            if a.dtype.kind == "f" or b.dtype.kind == "f":
                # NaN is this engine's "aggregate over empty input" marker
                # (no NULL system), so NaN == NaN here.
                if not np.allclose(
                    a.astype(np.float64),
                    b.astype(np.float64),
                    rtol=rel,
                    atol=1e-12,
                    equal_nan=True,
                ):
                    return False
            elif not all(x == y for x, y in zip(a, b)):
                return False
        return True

    # ------------------------------------------------------------ display

    def __repr__(self) -> str:
        lines = [" | ".join(self.names)]
        for i, row in enumerate(self.rows()):
            if i >= 20:
                lines.append(f"... ({self.num_rows} rows)")
                break
            lines.append(" | ".join(_fmt(v) for v in row))
        return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, (float, np.floating)):
        return f"{v:.6g}"
    return str(v)
