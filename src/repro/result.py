"""Query results.

A :class:`QueryResult` is a small columnar result set: named NumPy arrays
plus conveniences for tests and interactive use (row tuples, dict export,
pretty printing).  All engines and baselines in this repository return this
type, which is what lets the property tests assert that every loading
policy produces byte-identical answers.

The same type is the unit of the wire protocol: :meth:`to_json_dict` /
:meth:`from_json_dict` give an exact JSON-safe round-trip (non-finite
floats are encoded as the strings ``"NaN"`` / ``"Infinity"`` /
``"-Infinity"`` so payloads stay strict-JSON), and the paging API
(:meth:`page`, :meth:`pages`, :meth:`num_pages`) slices a result into
bounded row windows — the CLI, the HTTP server and the client all
serialize and page results through these methods, identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np


def _encode_value(v) -> object:
    """One cell as a strict-JSON-safe Python scalar."""
    if isinstance(v, (bool, np.bool_)):
        return bool(v)
    if isinstance(v, (int, np.integer)):
        return int(v)
    if isinstance(v, (float, np.floating)):
        f = float(v)
        if math.isnan(f):
            return "NaN"
        if math.isinf(f):
            return "Infinity" if f > 0 else "-Infinity"
        return f
    return str(v)


_FLOAT_SPECIALS = {
    "NaN": float("nan"),
    "Infinity": float("inf"),
    "-Infinity": float("-inf"),
}


def _decode_column(values: list, dtype: str) -> np.ndarray:
    if dtype == "int64":
        return np.array(values, dtype=np.int64)
    if dtype == "float64":
        return np.array(
            [_FLOAT_SPECIALS.get(v, v) if isinstance(v, str) else v for v in values],
            dtype=np.float64,
        )
    return np.array([str(v) for v in values], dtype=object)


def _dtype_token(arr: np.ndarray) -> str:
    if arr.dtype.kind in "iub":
        return "int64"
    if arr.dtype.kind == "f":
        return "float64"
    return "str"


@dataclass
class QueryResult:
    """Columnar result set."""

    names: list[str]
    columns: list[np.ndarray]
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.names) != len(self.columns):
            raise ValueError(
                f"{len(self.names)} names but {len(self.columns)} columns"
            )
        lengths = {len(c) for c in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged result: column lengths {sorted(lengths)}")

    # ------------------------------------------------------------- access

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[self.names.index(name)]
        except ValueError:
            raise KeyError(f"no result column {name!r}; have {self.names}") from None

    def rows(self) -> list[tuple]:
        return [tuple(col[i] for col in self.columns) for i in range(self.num_rows)]

    def scalar(self):
        """The single value of a 1x1 result (aggregate convenience)."""
        if self.num_rows != 1 or self.num_columns != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, have {self.num_rows}x{self.num_columns}"
            )
        return self.columns[0][0]

    def to_dict(self) -> dict[str, list]:
        return {n: list(c) for n, c in zip(self.names, self.columns)}

    # ------------------------------------------------------------- paging

    def slice_rows(self, start: int, stop: int) -> "QueryResult":
        """A new result holding rows ``[start, stop)`` (stats not copied)."""
        return QueryResult(list(self.names), [c[start:stop] for c in self.columns])

    def num_pages(self, size: int) -> int:
        """How many ``size``-row pages this result splits into (>= 1)."""
        if size <= 0:
            raise ValueError(f"page size must be positive, got {size}")
        return max(1, -(-self.num_rows // size))

    def page(self, n: int, size: int) -> "QueryResult":
        """Page ``n`` (0-based) of ``size`` rows.

        Raises :class:`IndexError` past the last page; page 0 of an empty
        result is the empty result itself (a result always has one page).
        """
        npages = self.num_pages(size)
        if not 0 <= n < npages:
            raise IndexError(f"page {n} out of range (result has {npages} pages)")
        return self.slice_rows(n * size, min((n + 1) * size, self.num_rows))

    def pages(self, size: int) -> Iterator["QueryResult"]:
        """Iterate the result as bounded ``size``-row pages, in order."""
        for n in range(self.num_pages(size)):
            yield self.page(n, size)

    # ------------------------------------------------------- serialization

    def to_json_dict(self) -> dict:
        """Strict-JSON-safe wire form (exact round-trip via
        :meth:`from_json_dict`); the CLI ``--json`` mode, the HTTP server
        and the client all use exactly this encoding."""
        return {
            "names": list(self.names),
            "dtypes": [_dtype_token(c) for c in self.columns],
            "columns": [[_encode_value(v) for v in c] for c in self.columns],
            "num_rows": self.num_rows,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "QueryResult":
        """Rebuild a result from its :meth:`to_json_dict` form."""
        names = list(payload["names"])
        dtypes = list(payload["dtypes"])
        columns = [
            _decode_column(col, dtype)
            for col, dtype in zip(payload["columns"], dtypes)
        ]
        return cls(names, columns)

    # ---------------------------------------------------------- comparison

    def approx_equal(self, other: "QueryResult", rel: float = 1e-9) -> bool:
        """Value equality with float tolerance, ignoring stats."""
        if self.names != other.names or self.num_rows != other.num_rows:
            return False
        for a, b in zip(self.columns, other.columns):
            if a.dtype.kind == "f" or b.dtype.kind == "f":
                # NaN is this engine's "aggregate over empty input" marker
                # (no NULL system), so NaN == NaN here.
                if not np.allclose(
                    a.astype(np.float64),
                    b.astype(np.float64),
                    rtol=rel,
                    atol=1e-12,
                    equal_nan=True,
                ):
                    return False
            elif not all(x == y for x, y in zip(a, b)):
                return False
        return True

    # ------------------------------------------------------------ display

    def __repr__(self) -> str:
        lines = [" | ".join(self.names)]
        for i, row in enumerate(self.rows()):
            if i >= 20:
                lines.append(f"... ({self.num_rows} rows)")
                break
            lines.append(" | ".join(_fmt(v) for v in row))
        return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, (float, np.floating)):
        return f"{v:.6g}"
    return str(v)
