"""Re-export of the positional map (see :mod:`repro.flatfile.positions`).

The data structure lives next to the tokenizer that feeds it; this module
exists so that code reading the paper ("table of contents over the flat
files", section 4.1.5) finds it where DESIGN.md's inventory says it is.
"""

from repro.flatfile.positions import PositionalMap

__all__ = ["PositionalMap"]
