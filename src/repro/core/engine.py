"""NoDBEngine: "here are my data files, here are my queries".

The facade the whole repository exists for::

    from repro import NoDBEngine

    engine = NoDBEngine()            # zero initialization
    engine.attach("r", "data.csv")   # just a pointer to the raw file
    result = engine.query(
        "select sum(a1), avg(a2) from r where a1 > 10 and a1 < 500"
    )

Attaching performs no loading.  Every query triggers exactly as much
tokenization, parsing and storing as its loading policy decides, the
adaptive store grows (and shrinks, under a memory budget) as a side effect,
and edits to the underlying flat file invalidate derived state
transparently (section 5.4's simple strategy).
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.config import EngineConfig
from repro.core.monitor import RobustnessMonitor
from repro.core.policies import LoadContext, TableView, make_policy
from repro.core.splitfile import SplitFileCatalog, cleanup_directory
from repro.core.statistics import EngineStatistics, QueryStats, Stopwatch
from repro.errors import StaleFileError
from repro.result import QueryResult
from repro.sql.binder import BoundQuery, bind
from repro.sql.parser import parse_sql
from repro.execution.executor import execute_bound_query
from repro.storage.binarystore import BinaryStore
from repro.storage.catalog import Catalog, TableEntry
from repro.storage.memory import MemoryManager


class NoDBEngine:
    """Adaptive in-situ query engine over raw flat files."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self.catalog = Catalog()
        self.policy = make_policy(self.config.policy)
        #: Stand-in for splitfiles on dialects that cannot be cracked.
        self._splitfile_fallback = make_policy("column_loads")
        self.memory = MemoryManager(
            budget_bytes=self.config.memory_budget_bytes,
            policy=self.config.eviction_policy,
        )
        self.stats = EngineStatistics()
        self.monitor = RobustnessMonitor(policy=self.config.policy)
        self._splits: dict[str, SplitFileCatalog] = {}
        self._owns_split_dir = self.config.splitfile_dir is None
        # Section 5.4's "simple solution" to concurrency: loading and
        # store mutation are serialized per engine; query execution over
        # immutable NumPy fragments needs no further locking.  Coarse, but
        # exactly the simplicity/complexity trade the paper recommends as
        # the starting point.
        self._lock = threading.RLock()
        self.binary_store: BinaryStore | None = None
        if self.config.binary_store_dir is not None:
            self.binary_store = BinaryStore(
                self.config.binary_store_dir,
                write_bandwidth_bytes_per_sec=self.config.binary_write_bandwidth,
                read_bandwidth_bytes_per_sec=self.config.binary_read_bandwidth,
            )

    # ----------------------------------------------------------- attaching

    def attach(
        self,
        name: str,
        path: Path | str,
        delimiter: str = ",",
        format: str | None = None,
        fixed_widths: tuple[int, ...] | None = None,
    ) -> None:
        """Link a raw file as a queryable table.  No data is read.

        ``format`` picks the file's dialect: ``None``/``"csv"`` (plain
        delimited), ``"quoted-csv"``, ``"tsv"``, ``"jsonl"``,
        ``"fixed-width"`` (needs ``fixed_widths``), or ``"auto"`` to
        sniff lazily on first use.
        """
        self.catalog.attach(
            name,
            path,
            delimiter=delimiter,
            bandwidth_bytes_per_sec=self.config.io_bandwidth_bytes_per_sec,
            format=format,
            fixed_widths=fixed_widths,
        )

    def detach(self, name: str) -> None:
        entry = self.catalog.get(name)
        self._invalidate_entry(entry)
        self.catalog.detach(name)

    def tables(self) -> list[str]:
        return self.catalog.names()

    def clear_cache(self, table: str | None = None) -> None:
        """Drop loaded data (and split files) without detaching.

        The paper's lifetime principle (section 5.1.3): anything in the
        adaptive store "may be thrown away at any time — the only cost is
        that of having to reload".  ``table=None`` clears every attached
        table; otherwise just the named one.  Raw files are untouched.
        """
        with self._lock:
            entries = (
                [self.catalog.get(table)]
                if table is not None
                else list(self.catalog.entries.values())
            )
            for entry in entries:
                self._invalidate_entry(entry)

    def set_policy(self, policy_name: str) -> None:
        """Switch loading policy in place (adaptation trigger, section 5.3).

        The adaptive store survives the switch: fully loaded columns keep
        serving any policy; partial fragments keep their certificates and
        are reused where the new policy understands them (partial_v2) or
        simply superseded by fuller loads (column/split/full).
        """
        with self._lock:
            if policy_name == self.config.policy:
                return
            self.policy = make_policy(policy_name)  # validates the name
            self.config.policy = policy_name
            self.monitor.policy = policy_name

    def schema_of(self, name: str) -> list[tuple[str, str]]:
        """Column names/types of an attached table (triggers inference)."""
        schema = self.catalog.get(name).ensure_schema()
        return [(c.name, c.dtype.value) for c in schema]

    # ------------------------------------------------------------ querying

    def query(self, sql: str) -> QueryResult:
        """Parse, bind, adaptively load, and execute one SELECT.

        Thread-safe: concurrent callers are serialized through the
        loading/metadata phase (see ``_lock``); execution runs on the
        immutable column snapshots captured in the views.
        """
        qstats = QueryStats(sql=sql, policy=self.config.policy)
        watch = Stopwatch()
        total = Stopwatch()

        with self._lock:
            bound = self._bind(sql)
            entries = {b: self.catalog.get(t) for b, t in bound.tables.items()}
            for entry in entries.values():
                self._check_stale(entry)
            qstats.tables = sorted({e.name for e in entries.values()})

            bytes_before, reads_before = self._file_io_totals(entries.values())
            watch.lap()
            views = self._provide_views(bound, entries, qstats)
            qstats.load_s = watch.lap()

        result = execute_bound_query(
            bound,
            get_column=lambda b, c: views[b].get_column(c),
            nrows_of=lambda b: views[b].nrows,
        )
        qstats.execute_s = watch.lap()

        bytes_after, reads_after = self._file_io_totals(entries.values())
        qstats.file_bytes_read = bytes_after - bytes_before
        qstats.file_reads = reads_after - reads_before
        qstats.served_from_store = all(v.served_from_store for v in views.values())
        qstats.went_to_file = any(v.went_to_file for v in views.values())
        qstats.result_rows = result.num_rows
        qstats.elapsed_s = total.lap()
        self.stats.record(qstats)
        self.monitor.observe(qstats, self.memory.stats.evictions)
        result.stats = {
            "policy": self.config.policy,
            "elapsed_s": qstats.elapsed_s,
            "served_from_store": qstats.served_from_store,
            "file_bytes_read": qstats.file_bytes_read,
            "parallel_partitions": qstats.parallel_partitions,
        }
        return result

    def explain(self, sql: str) -> str:
        """Describe what the query needs and what the store already has."""
        bound = self._bind(sql)
        lines = [f"policy: {self.config.policy}"]
        for binding, table_name in bound.tables.items():
            entry = self.catalog.get(table_name)
            needed = bound.needed_columns[binding]
            condition = bound.conditions[binding]
            lines.append(f"table {table_name} (as {binding}):")
            lines.append(f"  needed columns: {', '.join(needed)}")
            lines.append(f"  range condition: {condition!r}")
            table = entry.table
            if table is None:
                lines.append("  store: empty (nothing loaded yet)")
                continue
            for name in needed:
                pc = table.columns.get(name.lower())
                if pc is None or pc.loaded_count == 0:
                    state = "not loaded"
                elif pc.is_fully_loaded:
                    state = "fully loaded"
                else:
                    state = (
                        f"partially loaded ({pc.loaded_count}/{table.nrows} rows, "
                        f"{len(pc.certificates)} certificates)"
                    )
                lines.append(f"  store[{name}]: {state}")
        if bound.has_residual_predicate:
            lines.append("residual predicates present (evaluated post-load)")
        return "\n".join(lines)

    # ------------------------------------------------------------ internals

    def _bind(self, sql: str) -> BoundQuery:
        stmt = parse_sql(sql)
        table_names = []
        if stmt.table is not None:
            table_names.append(stmt.table.name)
        table_names.extend(j.table.name for j in stmt.joins)
        schemas = {}
        for name in table_names:
            entry = self.catalog.get(name)
            schemas[name] = entry.ensure_schema()
        return bind(stmt, schemas)

    def _provide_views(
        self,
        bound: BoundQuery,
        entries: dict[str, TableEntry],
        qstats: QueryStats,
    ) -> dict[str, TableView]:
        views: dict[str, TableView] = {}
        for binding, entry in entries.items():
            # ``count(*)`` references no columns, but the row count still
            # has to come from somewhere: load the first column.
            needed = bound.needed_columns[binding]
            if not needed:
                needed = [entry.ensure_schema().columns[0].name]
            # Pin this query's already-resident columns: loading a missing
            # column must never evict a sibling the same query needs.
            if entry.table is not None:
                schema = entry.ensure_schema()
                for name in needed:
                    self.memory.pin((entry.table.name, schema.column(name).name))
            # Split files re-slice raw rows with delimiter arithmetic,
            # which only the plain delimited dialect supports; for other
            # dialects the splitfiles policy degrades to column loads on
            # that table (same results, no cracking).
            splittable = entry.file.adapter.supports_find_jump
            policy = self.policy
            if self.config.policy == "splitfiles" and not splittable:
                policy = self._splitfile_fallback
            ctx = LoadContext(
                entry=entry,
                needed=needed,
                condition=bound.conditions[binding],
                config=self.config,
                memory=self.memory,
                qstats=qstats,
                split=self._split_catalog(entry)
                if self.config.policy == "splitfiles" and splittable
                else None,
                binary=self.binary_store,
            )
            views[binding] = policy.provide(ctx)
        self.memory.release_pins()
        return views

    def _split_catalog(self, entry: TableEntry) -> SplitFileCatalog:
        key = entry.name.lower()
        if key not in self._splits:
            schema = entry.ensure_schema()
            self._splits[key] = SplitFileCatalog(
                source=entry.file,
                directory=self.config.resolve_splitfile_dir(),
                ncols=len(schema),
                table_key=key,
                skip_rows=1 if entry.has_header else 0,
            )
        return self._splits[key]

    def _file_io_totals(self, entries) -> tuple[int, int]:
        total_bytes = 0
        total_reads = 0
        for entry in entries:
            total_bytes += entry.file.stats.bytes_read
            total_reads += entry.file.stats.read_calls
            split = self._splits.get(entry.name.lower())
            if split is not None:
                total_bytes += split.io_bytes_read()
        return total_bytes, total_reads

    # --------------------------------------------------------- invalidation

    def _check_stale(self, entry: TableEntry) -> None:
        if not entry.is_stale():
            return
        if not self.config.auto_invalidate:
            raise StaleFileError(
                f"flat file for table {entry.name!r} changed after loading; "
                "auto_invalidate is disabled"
            )
        self._invalidate_entry(entry)

    def _invalidate_entry(self, entry: TableEntry) -> None:
        if entry.table is not None:
            for pc in entry.table.columns.values():
                self.memory.forget((entry.table.name, pc.name))
        entry.invalidate()
        split = self._splits.pop(entry.name.lower(), None)
        if split is not None:
            split.destroy()
        if self.binary_store is not None:
            self.binary_store.drop_table(entry.name)

    # -------------------------------------------------------------- cleanup

    def close(self) -> None:
        """Release split-file scratch space."""
        for split in self._splits.values():
            split.destroy()
        self._splits.clear()
        if self._owns_split_dir and self.config.splitfile_dir is not None:
            cleanup_directory(self.config.splitfile_dir)
            self.config.splitfile_dir = None

    def __enter__(self) -> "NoDBEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
