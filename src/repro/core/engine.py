"""NoDBEngine: "here are my data files, here are my queries".

The facade the whole repository exists for::

    from repro import NoDBEngine

    engine = NoDBEngine()            # zero initialization
    engine.attach("r", "data.csv")   # just a pointer to the raw file
    result = engine.query(
        "select sum(a1), avg(a2) from r where a1 > 10 and a1 < 500"
    )

Attaching performs no loading.  Every query triggers exactly as much
tokenization, parsing and storing as its loading policy decides, the
adaptive store grows (and shrinks, under a memory budget) as a side effect,
and edits to the underlying flat file invalidate derived state
transparently (section 5.4's simple strategy).

Concurrent serving
------------------

The paper's section 5.4 punts on concurrency ("serialize loading per
engine"); this engine replaces that global lock with three layers:

* **per-table reader–writer locks** (:class:`repro.locks.RWLock`, one on
  each :class:`TableEntry`): queries over distinct tables never contend,
  and warm queries over the *same* table share the read side and run
  fully in parallel.  Loading — which mutates the store, the positional
  map and the partition index — takes the write side.
* **shared-scan batching** (:class:`repro.locks.SingleFlight`): when N
  threads miss the store for the same cold (table, column-set), exactly
  one runs the adaptive load; the rest wait on the flight and then serve
  from the freshly loaded fragments instead of re-scanning the raw file.
* an optional **query-result cache**
  (:class:`repro.core.result_cache.QueryResultCache`): completed results,
  keyed by normalized statement + file signature, served with no loading
  or execution at all, charged to the memory budget and invalidated by
  the same staleness path that drops positional maps.

``EngineConfig(global_lock=True)`` restores the paper's serialization
(the baseline of ``benchmarks/bench_concurrent.py``).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext, suppress
from pathlib import Path

import numpy as np

from repro.config import EngineConfig
from repro.core.append import extend_entry_for_append
from repro.core.loader import _widen_column
from repro.core.monitor import RobustnessMonitor
from repro.core.policies import LoadContext, LoadingPolicy, TableView, make_policy
from repro.core.result_cache import FileSignature, QueryResultCache
from repro.core.splitfile import SplitFileCatalog, cleanup_directory
from repro.core.statistics import EngineStatistics, QueryStats, Stopwatch
from repro.errors import CatalogError, FlatFileError, StaleFileError
from repro.faults import FaultPlan
from repro.locks import SingleFlight
from repro.result import QueryResult
from repro.sql.ast_nodes import SelectStmt
from repro.sql.binder import BoundQuery, bind
from repro.sql.parser import parse_sql
from repro.execution.executor import execute_bound_query
from repro.flatfile.files import FileFingerprint, detect_tail_append
from repro.flatfile.schema import ColumnSchema, DataType, TableSchema, merge_schemas, widest
from repro.storage.binarystore import BinaryStore
from repro.storage.catalog import Catalog, MultiFileEntry, TableEntry
from repro.storage.memory import MemoryManager
from repro.storage.persistent import PersistedState, PersistentStore
from repro.storage.table import Table


class NoDBEngine:
    """Adaptive in-situ query engine over raw flat files."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        # Deterministic fault injection: an explicit plan on the config
        # wins; otherwise the REPRO_FAULTS env hook is consulted once
        # here so served subprocesses can run under a plan too.  None in
        # production — every downstream check is then a no-op.
        self.fault_plan: FaultPlan | None = (
            self.config.fault_plan
            if self.config.fault_plan is not None
            else FaultPlan.from_env()
        )
        self.catalog = Catalog()
        self.policy = make_policy(self.config.policy)
        #: Stand-in for splitfiles on dialects that cannot be cracked.
        self._splitfile_fallback = make_policy("column_loads")
        self.memory = MemoryManager(
            budget_bytes=self.config.memory_budget_bytes,
            policy=self.config.eviction_policy,
        )
        self.stats = EngineStatistics()
        self.monitor = RobustnessMonitor(policy=self.config.policy)
        self._owns_split_dir = self.config.splitfile_dir is None
        # Catalog/config mutation (attach, detach, set_policy, close) is
        # serialized here; with ``global_lock=True`` the whole per-query
        # load phase is too (the paper's section 5.4 baseline).  Query
        # serving otherwise relies on the per-table RW locks plus the
        # shared-scan flight gate below.
        self._lock = threading.RLock()
        # Serializes lazy creation of the shared split-file directory
        # (two tables' first cold cracks may race).  Taken only while a
        # table write lock is held, and never the other way around.
        self._splitdir_lock = threading.Lock()
        self._scan_gate = SingleFlight()
        self.result_cache: QueryResultCache | None = None
        if self.config.result_cache:
            self.result_cache = QueryResultCache(
                memory=self.memory, max_entries=self.config.max_cached_results
            )
        self.binary_store: BinaryStore | None = None
        if self.config.binary_store_dir is not None:
            self.binary_store = BinaryStore(
                self.config.binary_store_dir,
                write_bandwidth_bytes_per_sec=self.config.binary_write_bandwidth,
                read_bandwidth_bytes_per_sec=self.config.binary_read_bandwidth,
            )
        # The persistent adaptive store: learned state (positional maps,
        # partition plans, widened schemas, fully loaded columns) that
        # survives restarts, keyed by the source file's fingerprint.
        # Writes happen off the query path on a single background thread.
        self.persistent_store: PersistentStore | None = None
        self._persist_pool: ThreadPoolExecutor | None = None
        self._persist_lock = threading.Lock()
        self._persist_futures: list[Future] = []
        #: path -> last-persisted state token; skips no-op re-persists.
        self._persisted_tokens: dict[str, tuple] = {}
        # Persist-failure degradation: writes that keep failing flip the
        # store read-only and the engine serves warm-only from memory —
        # a broken store directory must never fail a query.
        self._persist_read_only = False
        self._persist_consecutive_failures = 0
        if self.config.store_dir is not None and self.config.persistent_store:
            self.persistent_store = PersistentStore(
                self.config.store_dir, fault_plan=self.fault_plan
            )

    # ----------------------------------------------------------- attaching

    def attach(
        self,
        name: str,
        path: Path | str,
        delimiter: str = ",",
        format: str | None = None,
        fixed_widths: tuple[int, ...] | None = None,
    ) -> None:
        """Link a raw file as a queryable table.  No data is read.

        ``format`` picks the file's dialect: ``None``/``"csv"`` (plain
        delimited), ``"quoted-csv"``, ``"tsv"``, ``"jsonl"``,
        ``"fixed-width"`` (needs ``fixed_widths``), or ``"auto"`` to
        sniff lazily on first use.
        """
        with self._lock:
            self.catalog.attach(
                name,
                path,
                delimiter=delimiter,
                bandwidth_bytes_per_sec=self.config.io_bandwidth_bytes_per_sec,
                format=format,
                fixed_widths=fixed_widths,
                fault_plan=self.fault_plan,
                retry_attempts=self.config.io_retry_attempts,
                retry_backoff_s=self.config.io_retry_backoff_s,
            )

    def detach(self, name: str) -> None:
        # ``_lock`` is NOT held across the table write lock: the load
        # path takes locks while a write lock is held, so the orders are
        # kept disjoint rather than nested.  The tombstone (set under the
        # same write lock every serve path checks under) stops queries
        # that resolved the entry before this detach from repopulating
        # store/split state on the unlisted entry afterwards.
        with self._lock:
            entry = self.catalog.get(name)
        if isinstance(entry, MultiFileEntry):
            with entry.rwlock.write_locked():
                entry.detached = True
            for part in entry.part_entries():
                with part.rwlock.write_locked():
                    part.detached = True
                    self._invalidate_entry(part)
        else:
            with entry.rwlock.write_locked():
                entry.detached = True
                self._invalidate_entry(entry)
        with self._lock:
            self.catalog.detach(name)

    def tables(self) -> list[str]:
        return self.catalog.names()

    def clear_cache(self, table: str | None = None) -> None:
        """Drop loaded data (and split files) without detaching.

        The paper's lifetime principle (section 5.1.3): anything in the
        adaptive store "may be thrown away at any time — the only cost is
        that of having to reload".  ``table=None`` clears every attached
        table; otherwise just the named one.  Raw files are untouched.
        """
        with self._lock:
            entries = (
                [self.catalog.get(table)]
                if table is not None
                else list(self.catalog.entries.values())
            )
        for entry in entries:
            parts = (
                entry.part_entries()
                if isinstance(entry, MultiFileEntry)
                else [entry]
            )
            for part in parts:
                with part.rwlock.write_locked():
                    self._invalidate_entry(part)

    def set_policy(self, policy_name: str) -> None:
        """Switch loading policy in place (adaptation trigger, section 5.3).

        The adaptive store survives the switch: fully loaded columns keep
        serving any policy; partial fragments keep their certificates and
        are reused where the new policy understands them (partial_v2) or
        simply superseded by fuller loads (column/split/full).
        """
        with self._lock:
            if policy_name == self.config.policy:
                return
            self.policy = make_policy(policy_name)  # validates the name
            self.config.policy = policy_name
            self.monitor.policy = policy_name

    def schema_of(self, name: str) -> list[tuple[str, str]]:
        """Column names/types of an attached table (triggers inference)."""
        schema = self.catalog.get(name).ensure_schema()
        return [(c.name, c.dtype.value) for c in schema]

    # ------------------------------------------------------------ querying

    def query(self, sql: str) -> QueryResult:
        """Parse, bind, adaptively load, and execute one SELECT.

        Thread-safe.  Concurrent callers contend only per table: store
        mutation takes the table's write lock, warm serving shares its
        read lock, identical cold scans are coalesced into one load, and
        (when enabled) repeated queries are answered straight from the
        result cache.
        """
        qstats = QueryStats(sql=sql, policy=self.config.policy)
        watch = Stopwatch()
        total = Stopwatch()

        stmt, bound = self._bind(sql)
        entries = {b: self.catalog.get(t) for b, t in bound.tables.items()}
        qstats.tables = sorted({e.name for e in entries.values()})

        cache_key: str | None = None
        signatures: dict[str, FileSignature] | None = None
        if self.result_cache is not None:
            cache_key, signatures = self._cache_probe_key(stmt, entries)
            if cache_key is not None:
                cached = self.result_cache.lookup(cache_key, signatures)
                if cached is not None:
                    return self._finish_cached(cached, qstats, total)
                self.stats.count("result_cache_misses")

        outer = self._lock if self.config.global_lock else nullcontext()
        with outer:
            bytes_before, reads_before, retries_before = self._file_io_totals(
                entries.values()
            )
            watch.lap()
            views = self._provide_views(bound, entries, qstats, signatures)
            qstats.load_s = watch.lap()

        result = execute_bound_query(
            bound,
            get_column=lambda b, c: views[b].get_column(c),
            nrows_of=lambda b: views[b].nrows,
        )
        qstats.execute_s = watch.lap()

        bytes_after, reads_after, retries_after = self._file_io_totals(
            entries.values()
        )
        qstats.file_bytes_read = bytes_after - bytes_before
        qstats.file_reads = reads_after - reads_before
        qstats.io_retries = retries_after - retries_before
        if qstats.io_retries:
            self.stats.count("io_retries", qstats.io_retries)
        qstats.served_from_store = all(v.served_from_store for v in views.values())
        qstats.went_to_file = any(v.went_to_file for v in views.values())
        qstats.result_rows = result.num_rows
        qstats.elapsed_s = total.lap()
        if qstats.zone_map_skips:
            self.stats.count("zone_map_skips", qstats.zone_map_skips)
        if qstats.cracks:
            self.stats.count("cracks", qstats.cracks)
        self.stats.record(qstats)
        self.monitor.observe(qstats, self.memory.stats.evictions)
        result.stats = {
            "policy": self.config.policy,
            "elapsed_s": qstats.elapsed_s,
            "served_from_store": qstats.served_from_store,
            "file_bytes_read": qstats.file_bytes_read,
            "parallel_partitions": qstats.parallel_partitions,
            "result_cache_hit": False,
        }
        if cache_key is not None and signatures is not None:
            self._maybe_cache(cache_key, signatures, entries, result)
        return result

    def explain(self, sql: str) -> str:
        """Describe what the query needs and what the store already has."""
        _, bound = self._bind(sql)
        lines = [f"policy: {self.config.policy}"]
        for binding, table_name in bound.tables.items():
            entry = self.catalog.get(table_name)
            needed = bound.needed_columns[binding]
            condition = bound.conditions[binding]
            lines.append(f"table {table_name} (as {binding}):")
            lines.append(f"  needed columns: {', '.join(needed)}")
            lines.append(f"  range condition: {condition!r}")
            if isinstance(entry, MultiFileEntry):
                parts = entry.part_entries()
                lines.append(
                    f"  multi-file table ({entry.pattern!r}): "
                    f"{len(parts)} part file(s) known"
                )
                for part in parts:
                    state = "empty" if part.table is None else (
                        f"{part.table.nrows} rows, "
                        f"{len(part.table.fully_loaded_columns())} full columns"
                    )
                    lines.append(f"  part {part.file.path.name}: {state}")
                continue
            table = entry.table
            if table is None:
                lines.append("  store: empty (nothing loaded yet)")
                continue
            for name in needed:
                pc = table.columns.get(name.lower())
                if pc is None or pc.loaded_count == 0:
                    state = "not loaded"
                elif pc.is_fully_loaded:
                    state = "fully loaded"
                else:
                    state = (
                        f"partially loaded ({pc.loaded_count}/{table.nrows} rows, "
                        f"{len(pc.certificates)} certificates)"
                    )
                lines.append(f"  store[{name}]: {state}")
        if bound.has_residual_predicate:
            lines.append("residual predicates present (evaluated post-load)")
        return "\n".join(lines)

    # ------------------------------------------------------------ internals

    def _bind(self, sql: str) -> tuple[SelectStmt, BoundQuery]:
        stmt = parse_sql(sql)
        table_names = []
        if stmt.table is not None:
            table_names.append(stmt.table.name)
        table_names.extend(j.table.name for j in stmt.joins)
        schemas = {}
        for name in table_names:
            entry = self.catalog.get(name)
            schemas[name] = entry.ensure_schema()
        return stmt, bind(stmt, schemas)

    # ------------------------------------------------------- result cache

    def _cache_probe_key(
        self, stmt: SelectStmt, entries: dict[str, TableEntry]
    ) -> tuple[str | None, dict[str, FileSignature] | None]:
        """Cache key + current file signatures (None when un-keyable)."""
        if any(isinstance(e, MultiFileEntry) for e in entries.values()):
            # One signature cannot vouch for a part set that is
            # re-discovered on every query; multi-file tables always run
            # the (per-part warm) serve path.
            return None, None
        try:
            signatures = {
                e.name.lower(): FileSignature.of(e.file.path)
                for e in entries.values()
            }
        except (OSError, FlatFileError):
            # File vanished mid-probe: let the load path raise properly.
            return None, None
        # The attachment uid in the key means a detach + re-attach of the
        # same name (possibly same file, different parse options) can
        # never hit — or be poisoned by — the old attachment's entries.
        key = QueryResultCache.key_for(
            repr(stmt),
            [f"{e.name.lower()}#{e.uid}" for e in entries.values()],
        )
        return key, signatures

    def _finish_cached(
        self, cached: QueryResult, qstats: QueryStats, total: Stopwatch
    ) -> QueryResult:
        qstats.result_cache_hit = True
        qstats.served_from_store = True
        qstats.result_rows = cached.num_rows
        qstats.elapsed_s = total.lap()
        self.stats.count("result_cache_hits")
        self.stats.record(qstats)
        self.monitor.observe(qstats, self.memory.stats.evictions)
        cached.stats = {
            "policy": self.config.policy,
            "elapsed_s": qstats.elapsed_s,
            "served_from_store": True,
            "file_bytes_read": 0,
            "parallel_partitions": 0,
            "result_cache_hit": True,
        }
        return cached

    def _maybe_cache(
        self,
        cache_key: str,
        signatures: dict[str, FileSignature],
        entries: dict[str, TableEntry],
        result: QueryResult,
    ) -> None:
        """Store the result unless its inputs changed while we computed it.

        Two re-checks: every file signature must be unchanged, and every
        table entry must still be the *current* attachment of its name —
        a detach + re-attach of the same file under different parse
        options (dialect, delimiter) would otherwise let this store
        resurrect a result the detach already invalidated, keyed by a
        signature the new attachment also matches.
        """
        if self.result_cache is None:
            return
        with self._lock:
            current = all(
                self.catalog.entries.get(e.name.lower()) is e
                for e in entries.values()
            )
        if not current:
            return
        try:
            fresh = {
                e.name.lower(): FileSignature.of(e.file.path)
                for e in entries.values()
            }
        except (OSError, FlatFileError):
            return
        if fresh == signatures:
            self.result_cache.store(cache_key, result, fresh)

    # ----------------------------------------------------------- providing

    def _provide_views(
        self,
        bound: BoundQuery,
        entries: dict[str, TableEntry],
        qstats: QueryStats,
        signatures: dict[str, FileSignature] | None = None,
    ) -> dict[str, TableView]:
        views: dict[str, TableView] = {}
        # Tables are served one at a time, in a deterministic order, and
        # each table's lock is released before the next is taken (views
        # hold immutable array snapshots) — so multi-table queries cannot
        # deadlock against each other.
        for binding in sorted(entries, key=lambda b: entries[b].name.lower()):
            entry = entries[binding]
            if isinstance(entry, MultiFileEntry):
                views[binding] = self._provide_multi(binding, entry, bound, qstats)
                continue
            known = (signatures or {}).get(entry.name.lower())
            views[binding] = self._provide_one(binding, entry, bound, qstats, known)
        return views

    def _provide_multi(
        self,
        binding: str,
        entry: MultiFileEntry,
        bound: BoundQuery,
        qstats: QueryStats,
    ) -> TableView:
        """Serve a multi-file table: per-part provision, late union.

        The part set is re-discovered here, so a part file that appeared
        since the last query is picked up (cold, learned incrementally)
        while untouched siblings keep serving warm; a part that vanished
        is invalidated and dropped.  Each part runs the ordinary
        single-table serve path — staleness, append-extension,
        persistence and shared scans all work per part — and the views
        are concatenated in sorted part order.
        """
        if entry.detached:
            raise CatalogError(
                f"table {entry.name!r} was detached while the query ran"
            )
        parts, removed = entry.refresh()
        for part in removed:
            with part.rwlock.write_locked():
                part.detached = True
                self._invalidate_entry(part)
        needed = bound.needed_columns[binding]
        if not needed:
            needed = [entry.ensure_schema().columns[0].name]
        views = {
            part.name: self._provide_one(binding, part, bound, qstats)
            for part in parts
        }
        # Parts widen independently (their own raw bytes drive the
        # ladder); a query spanning parts must see one dtype per column.
        # Widen lagging parts to the widest observed and re-provide them
        # — re-parsing raw text through the normal path, so e.g. "007"
        # under a str-widened sibling stays "007", not str(int) — and
        # iterate: a re-provide may itself widen further.
        for _ in range(4):  # the ladder has three rungs; fixpoint is near
            changed = False
            for name in needed:
                try:
                    dtypes = {
                        part.name: part.ensure_schema().dtype_of(name)
                        for part in parts
                    }
                except KeyError:
                    raise CatalogError(
                        f"table {entry.name!r}: part files disagree on "
                        f"column {name!r}"
                    ) from None
                target = widest(dtypes.values())
                for part in parts:
                    if dtypes[part.name] is target:
                        continue
                    with part.rwlock.write_locked():
                        self._check_detached(part)
                        _widen_column(
                            part, part.schema.index_of(name), target
                        )
                    views[part.name] = self._provide_one(
                        binding, part, bound, qstats
                    )
                    changed = True
            if not changed:
                break
        with entry.parts_lock:
            merged = parts[0].ensure_schema()
            for part in parts[1:]:
                merged = merge_schemas(merged, part.ensure_schema())
            entry.schema = merged
        part_views = [views[part.name] for part in parts]
        keys = set(part_views[0].arrays)
        for v in part_views[1:]:
            keys &= set(v.arrays)
        arrays = {
            key: np.concatenate([v.arrays[key] for v in part_views])
            if len(part_views) > 1
            else part_views[0].arrays[key]
            for key in keys
        }
        return TableView(
            nrows=sum(v.nrows for v in part_views),
            arrays=arrays,
            served_from_store=all(v.served_from_store for v in part_views),
            went_to_file=any(v.went_to_file for v in part_views),
        )

    def _provide_one(
        self,
        binding: str,
        entry: TableEntry,
        bound: BoundQuery,
        qstats: QueryStats,
        known_fingerprint: "FileSignature | None" = None,
    ) -> TableView:
        # ``count(*)`` references no columns, but the row count still has
        # to come from somewhere: load the first column.
        needed = bound.needed_columns[binding]
        if not needed:
            needed = [entry.ensure_schema().columns[0].name]
        condition = bound.conditions[binding]
        entry_key = entry.name.lower()
        waited = False
        while True:
            # One coherent read per attempt: a concurrent set_policy must
            # not be observed as one policy here and another in the
            # flight key or the split-catalog decision below.
            policy_name = self.config.policy
            policy = self._policy_for(entry, policy_name)
            # Warm path: serve from resident fragments under the shared
            # read lock — warm queries on one table run fully in parallel.
            # The result-cache probe already fingerprinted the file this
            # query; reuse that observation instead of re-hashing.
            if known_fingerprint is not None:
                stale = (
                    entry.loaded_fingerprint is not None
                    and known_fingerprint != entry.loaded_fingerprint
                )
                known_fingerprint = None  # retries must observe fresh state
            else:
                stale = entry.is_stale()
            if not stale:
                ctx = self._make_ctx(entry, needed, condition, qstats, policy_name)
                try:
                    with entry.rwlock.read_locked():
                        self._check_detached(entry)
                        view = policy.try_serve_warm(ctx)
                finally:
                    self.memory.unpin_many(ctx.pinned_keys)
                if view is not None:
                    self._count_warm(qstats, waited)
                    return view
            # Cold path: coalesce identical scans into one flight, then
            # load under the exclusive write lock.
            flight_key = (
                entry_key,
                policy_name,
                tuple(sorted(n.lower() for n in needed)),
                repr(condition),
            )
            if not self._scan_gate.lead_or_wait(flight_key):
                # Another thread just loaded exactly this: re-probe warm.
                waited = True
                continue
            try:
                with entry.rwlock.write_locked():
                    self._check_detached(entry)
                    # One stat serves both staleness and the fingerprint
                    # the loaded data will be branded with: captured
                    # BEFORE any raw read, so a file replaced mid-load
                    # mismatches on the next query and is reloaded —
                    # stamping it after the read (ensure_table's default)
                    # would brand old bytes with the new file's identity.
                    pre_fingerprint = self._check_stale(entry)
                    # Restart-warm path: before scheduling a cold scan,
                    # consult the persistent store; a fingerprint-valid
                    # entry restores the positional map, partition plan,
                    # widened schema and mmapped columns in one step and
                    # the warm probe below then serves from them.
                    if self.persistent_store is not None and entry.table is None:
                        try:
                            self._restore_persistent(entry, pre_fingerprint)
                        except (OSError, FlatFileError):
                            # A corrupt or unreadable store entry must
                            # never fail the query: wipe whatever the
                            # partial restore left behind and scan cold.
                            self.stats.count("persist_failures")
                            self._invalidate_entry(entry)
                    ctx = self._make_ctx(
                        entry, needed, condition, qstats, policy_name, for_load=True
                    )
                    try:
                        view = policy.try_serve_warm(ctx)
                        if view is not None:
                            self._count_warm(qstats, waited)
                            return view
                        generation = entry.generation
                        self._pin_resident(entry, needed, ctx)
                        # Stage the pre-read identity for ensure_table:
                        # should provide() fail *after* creating the
                        # table, the entry must still be branded with the
                        # fingerprint its bytes were read under, or an
                        # append landing mid-read would go unnoticed.
                        entry.pre_fingerprint = pre_fingerprint
                        try:
                            view = policy.provide(ctx)
                        finally:
                            entry.pre_fingerprint = None
                        if entry.table is not None:
                            entry.loaded_fingerprint = pre_fingerprint
                        if view.went_to_file:
                            self.stats.note_load(
                                entry_key,
                                frozenset(n.lower() for n in needed),
                                generation,
                            )
                        else:
                            # provide() without touching the raw file
                            # (binary-store restore, v2 coverage found
                            # inside the lock): warm in substance, and a
                            # follower that waited still counts as reuse.
                            self._count_warm(qstats, waited)
                        self._schedule_persist(entry, pre_fingerprint)
                        return view
                    finally:
                        self.memory.unpin_many(ctx.pinned_keys)
            finally:
                self._scan_gate.done(flight_key)

    def _count_warm(self, qstats: QueryStats, waited: bool) -> None:
        if waited:
            qstats.shared_scan_reused = True
            self.stats.count("shared_scan_reuses")
        else:
            self.stats.count("warm_hits")

    def _policy_for(self, entry: TableEntry, policy_name: str) -> LoadingPolicy:
        """The effective policy for one table under ``policy_name``.

        Split files re-slice raw rows with delimiter arithmetic, which
        only the plain delimited dialect supports; for other dialects the
        splitfiles policy degrades to column loads on that table (same
        results, no cracking).  ``policy_name`` is the caller's coherent
        snapshot of ``config.policy`` — re-reading it here could tear
        against a concurrent ``set_policy``.
        """
        if policy_name == "splitfiles" and not self._splittable(entry):
            return self._splitfile_fallback
        if policy_name == self.config.policy:
            return self.policy
        return make_policy(policy_name)

    @staticmethod
    def _splittable(entry: TableEntry) -> bool:
        return entry.file.adapter.supports_find_jump

    def _make_ctx(
        self,
        entry: TableEntry,
        needed: list[str],
        condition,
        qstats: QueryStats,
        policy_name: str,
        for_load: bool = False,
    ) -> LoadContext:
        # The split catalog is only materialized for the load path (its
        # creation mutates the entry and must hold the write lock); warm
        # probes never touch ctx.split.
        split = None
        if for_load and policy_name == "splitfiles" and self._splittable(entry):
            split = self._split_catalog(entry)
        return LoadContext(
            entry=entry,
            needed=needed,
            condition=condition,
            config=self.config,
            memory=self.memory,
            qstats=qstats,
            split=split,
            binary=self.binary_store,
            advisor=self.monitor.cracking,
        )

    def _pin_resident(self, entry: TableEntry, needed: list[str], ctx: LoadContext) -> None:
        """Pin this query's already-resident columns: loading a missing
        column must never evict a sibling the same query needs."""
        if entry.table is None:
            return
        schema = entry.ensure_schema()
        for name in needed:
            ctx.pin((entry.table.name, schema.column(name).name))

    def _split_catalog(self, entry: TableEntry) -> SplitFileCatalog:
        """The entry's split catalog (caller holds the table write lock)."""
        if entry.split_catalog is None:
            schema = entry.ensure_schema()
            with self._splitdir_lock:
                directory = self.config.resolve_splitfile_dir()
            entry.split_catalog = SplitFileCatalog(
                source=entry.file,
                directory=directory,
                ncols=len(schema),
                table_key=entry.name.lower(),
                skip_rows=1 if entry.has_header else 0,
                vectorized=self.config.vectorized_tokenizer,
            )
        return entry.split_catalog

    def _file_io_totals(self, entries) -> tuple[int, int, int]:
        """Raw-file I/O attributable to the *calling thread*.

        ``QueryStats.file_bytes_read`` is the before/after delta of this,
        taken on the query's own thread — so concurrent queries never
        inherit each other's I/O (a shared-scan follower reports 0 even
        though the leader read the whole file).  Split-file bytes are
        still engine-wide counters: splitfile fetches run under the
        table's write lock, so same-table deltas may observe the
        leader's cracking I/O.
        """
        total_bytes = 0
        total_reads = 0
        total_retries = 0
        flat = []
        for entry in entries:
            if isinstance(entry, MultiFileEntry):
                flat.extend(entry.part_entries())
            else:
                flat.append(entry)
        for entry in flat:
            nbytes, calls = entry.file.thread_io_totals()
            total_bytes += nbytes
            total_reads += calls
            total_retries += entry.file.thread_io_retries()
            split = entry.split_catalog
            if split is not None:
                total_bytes += split.io_bytes_read()
        return total_bytes, total_reads, total_retries

    # ----------------------------------------------------- persistent store

    def _restore_persistent(
        self, entry: TableEntry, fingerprint: FileFingerprint
    ) -> bool:
        """Restore a cold table from the persistent store (write lock held).

        The restored state is branded with ``fingerprint`` — captured
        from the live file *before* this read, the same rule cold loads
        follow — so a file replaced mid-restore mismatches on the next
        query.  A fingerprint-stale persisted entry is deleted and
        counted, and the scan proceeds cold — *unless* the mismatch is a
        pure tail-append, in which case the entry restores under its
        stored (old) fingerprint and is extended over the appended
        region in place, exactly like an in-memory warm table would be.
        """
        outcome = self.persistent_store.load(entry.file.path, fingerprint)
        if outcome.invalidated:
            self.stats.count("store_invalidations")
        state = outcome.state
        if state is None or state.nrows <= 0:
            return False
        brand = state.fingerprint if outcome.appended else fingerprint
        # Adopt the persisted (possibly widened) schema wholesale: it was
        # inferred — and widened — from exactly the bytes the fingerprint
        # vouches for.
        entry.schema = TableSchema(
            [ColumnSchema(n, DataType(d)) for n, d in state.schema]
        )
        entry.has_header = state.has_header
        entry.table = Table(entry.name, entry.schema, state.nrows)
        entry.positional_map = state.positional_map
        entry.partitions = state.partitions
        entry.zone_maps = state.zone_maps
        entry.loaded_fingerprint = brand
        for name, values in state.columns.items():
            pc = entry.table.column(name)
            pc.restore_full(values)
            key = (entry.table.name, pc.name)

            def dropper(pc=pc):
                pc.drop()

            self.memory.register(
                key, pc.logical_nbytes, dropper, mapped=pc.is_mapped
            )
        # What we just restored is exactly what a re-persist would write.
        with self._persist_lock:
            self._persisted_tokens[str(entry.file.path)] = self._persist_token(
                entry, brand
            )
        if outcome.appended:
            # The restored state covers only the old prefix of the live
            # file; extend it over the appended tail now, while the write
            # lock is held.  Failure means the restored state cannot be
            # grown to match the live file — fall all the way to cold.
            if not self._try_extend_append(entry, fingerprint):
                self._invalidate_entry(entry)
                return False
        self.stats.count("restart_warm_hits")
        return True

    @staticmethod
    def _persist_token(entry: TableEntry, fingerprint: FileFingerprint) -> tuple:
        """What a persist of ``entry`` right now would write (write/read
        lock held): used to skip writes that would change nothing."""
        pm = entry.positional_map
        loaded: frozenset = frozenset()
        if entry.table is not None:
            loaded = frozenset(
                pc.name
                for pc in entry.table.columns.values()
                if pc.values is not None and pc.is_fully_loaded
            )
        return (
            fingerprint,
            loaded,
            frozenset(c for c in pm.field_offsets if c in pm.field_ends),
            pm.row_offsets is not None,
            entry.partitions is not None,
            frozenset(entry.zone_maps.columns)
            if entry.zone_maps is not None
            else frozenset(),
        )

    def _schedule_persist(
        self, entry: TableEntry, fingerprint: FileFingerprint
    ) -> None:
        """Queue a crash-safe store write (off the query path).

        Called at the end of a cold provision while the table write lock
        is still held; the single writer thread snapshots the entry under
        the read lock and re-validates the fingerprint, so a table
        invalidated between scheduling and writing is simply skipped.
        """
        if (
            self.persistent_store is None
            or self._persist_read_only
            or entry.table is None
            or entry.detached
        ):
            return
        key = str(entry.file.path)
        token = self._persist_token(entry, fingerprint)
        with self._persist_lock:
            if self._persisted_tokens.get(key) == token:
                return
            self._persisted_tokens[key] = token
            if self._persist_pool is None:
                self._persist_pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-persist"
                )
            self._persist_futures.append(
                self._persist_pool.submit(
                    self._persist_entry, entry, fingerprint, key, token
                )
            )

    def _persist_entry(
        self,
        entry: TableEntry,
        fingerprint: FileFingerprint,
        key: str,
        token: tuple,
    ) -> None:
        """Writer-thread body: snapshot under the read lock, write outside.

        A failed disk write degrades, never escalates: the token is
        dropped (a later load may retry), the failure is counted, and
        after ``config.persist_failure_limit`` *consecutive* failures the
        store goes read-only for this engine — queries keep being served
        warm from memory, they just stop surviving restarts.
        """
        try:
            with entry.rwlock.read_locked():
                if (
                    entry.detached
                    or entry.table is None
                    or entry.loaded_fingerprint != fingerprint
                ):
                    return
                state = PersistedState.from_entry(entry, fingerprint)
            self.persistent_store.save(state)
            self.stats.count("persist_writes")
            with self._persist_lock:
                self._persist_consecutive_failures = 0
        except (OSError, FlatFileError):
            with self._persist_lock:
                if self._persisted_tokens.get(key) == token:
                    del self._persisted_tokens[key]
                self._persist_consecutive_failures += 1
                if (
                    self._persist_consecutive_failures
                    >= self.config.persist_failure_limit
                ):
                    self._persist_read_only = True
            self.stats.count("persist_failures")
        except BaseException:
            # Non-I/O failures (bugs) still surface via flush.
            with self._persist_lock:
                if self._persisted_tokens.get(key) == token:
                    del self._persisted_tokens[key]
            raise

    def flush_persistent_store(self) -> None:
        """Block until every scheduled store write has landed.

        Re-raises writer-thread failures; used by tests, benches and
        anything simulating a restart hand-off to a new engine.
        """
        while True:
            with self._persist_lock:
                futures = self._persist_futures
                self._persist_futures = []
            if not futures:
                return
            for f in futures:
                f.result()

    # --------------------------------------------------------- invalidation

    @staticmethod
    def _check_detached(entry: TableEntry) -> None:
        """Refuse to serve a tombstoned entry (caller holds a table lock).

        A query may have resolved the entry just before a concurrent
        ``detach`` completed; failing here (exactly as if the lookup had
        happened after the detach) prevents it from repopulating store or
        split state that nothing would ever clean up.
        """
        if entry.detached:
            raise CatalogError(
                f"table {entry.name!r} was detached while the query ran"
            )

    def _check_stale(self, entry: TableEntry):
        """Invalidate a stale table (caller holds the table's write lock).

        Returns the fingerprint observed by the check so the caller can
        brand data loaded *after* this point with the pre-read identity.
        """
        fingerprint = entry.file.fingerprint()
        if (
            entry.loaded_fingerprint is None
            or fingerprint == entry.loaded_fingerprint
        ):
            return fingerprint
        if not self.config.auto_invalidate:
            raise StaleFileError(
                f"flat file for table {entry.name!r} changed after loading; "
                "auto_invalidate is disabled"
            )
        if self._try_extend_append(entry, fingerprint):
            return fingerprint
        self._invalidate_entry(entry)
        return fingerprint

    def _try_extend_append(
        self, entry: TableEntry, fingerprint: FileFingerprint
    ) -> bool:
        """Extend learned state over a pure tail-append (write lock held).

        Appends aren't rewrites: when the file grew and the prior region
        is byte-identical, the positional map, fully loaded columns, zone
        maps and partition plan are all extended in place instead of
        wiped — only structures whose *answers* changed (crackers, cached
        results, binary-store row images) are invalidated.  Returns False
        when the change is not a tail-append or any extension
        precondition fails; the caller falls back to full invalidation.
        """
        if not self.config.append_extension:
            return False
        old = entry.loaded_fingerprint
        if old is None or entry.table is None:
            return False
        if not detect_tail_append(entry.file.path, old, fingerprint):
            return False
        try:
            extended = extend_entry_for_append(
                entry, old, fingerprint, self.config, self.memory
            )
        except FlatFileError:
            extended = False
        if not extended:
            return False
        for col in list(entry.crackers):
            self.memory.forget(entry.cracker_key(col))
        entry.crackers.clear()
        self.monitor.cracking.forget_table(entry.name.lower())
        if self.binary_store is not None:
            self.binary_store.drop_table(entry.name)
        if self.result_cache is not None:
            self.result_cache.invalidate_table(entry.name.lower())
        entry.loaded_fingerprint = fingerprint
        entry.generation += 1
        self.stats.count("append_extensions")
        self._schedule_persist(entry, fingerprint)
        return True

    def _invalidate_entry(self, entry: TableEntry) -> None:
        if entry.table is not None:
            for pc in entry.table.columns.values():
                self.memory.forget((entry.table.name, pc.name))
        for col in list(entry.crackers):
            self.memory.forget(entry.cracker_key(col))
        self.monitor.cracking.forget_table(entry.name.lower())
        entry.invalidate()  # destroys the entry's split catalog too
        if self.binary_store is not None:
            self.binary_store.drop_table(entry.name)
        if self.result_cache is not None:
            self.result_cache.invalidate_table(entry.name.lower())
        if self.persistent_store is not None:
            with self._persist_lock:
                self._persisted_tokens.pop(str(entry.file.path), None)
            if self.persistent_store.invalidate(entry.file.path):
                self.stats.count("store_invalidations")

    # -------------------------------------------------------------- cleanup

    def close(self) -> None:
        """Release split-file scratch space and drain the persist writer.

        The persistent store itself is durable state and survives close —
        that is the point — but in-flight writes are allowed to land so a
        follow-up engine sees them (writer errors are swallowed here; use
        :meth:`flush_persistent_store` to observe them)."""
        with suppress(Exception):
            self.flush_persistent_store()
        with self._persist_lock:
            pool, self._persist_pool = self._persist_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        with self._lock:
            entries = list(self.catalog.entries.values())
        for entry in entries:
            parts = (
                entry.part_entries()
                if isinstance(entry, MultiFileEntry)
                else [entry]
            )
            for part in parts:
                split = part.split_catalog
                part.split_catalog = None
                if split is not None:
                    split.destroy()
        with self._lock:
            if self._owns_split_dir and self.config.splitfile_dir is not None:
                cleanup_directory(self.config.splitfile_dir)
                self.config.splitfile_dir = None

    def __enter__(self) -> "NoDBEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
