"""Partitioned parallel first-pass scans over flat files.

The paper's loading operators amortize parsing cost across queries, but a
*first* pass over a file is still a full tokenize-and-parse, and a serial
implementation makes cold-start latency scale linearly with file size.
This module decomposes that pass into **row-range partitions** — bounded,
independently servable units in the spirit of result-bounded access
interfaces — and fans them out over a process pool:

1. :func:`plan_partitions` splits the file into N newline-aligned byte
   ranges (computed once per file, cached on the catalog entry alongside
   the positional map, and invalidated with it);
2. :func:`scan_partition` — the picklable worker — tokenizes one
   partition with the ordinary :func:`~repro.flatfile.tokenizer.
   tokenize_columns`, rebuilding pushdown predicates from declarative
   specs and learning a partition-local positional map;
3. :func:`parallel_pass` dispatches the workers and merges their outputs
   deterministically: row ids are re-based in partition order, positional
   maps are shifted and concatenated (:meth:`~repro.flatfile.positions.
   PositionalMap.absorb_partitions`), per-partition schema widenings are
   resolved to the widest outcome of the shared ladder, and column arrays
   are concatenated in file order — so the adaptive store, eviction
   accounting and selective-read machinery see exactly what one serial
   pass would have produced.

Workers never touch engine state: a worker receives a :class:`ScanTask`
(paths, byte ranges, column indices, predicate intervals — all plain
data) and returns a :class:`ScanResult` (arrays, raw fields, stats).
Everything stateful — schema widening, store updates, I/O accounting,
positional-map feeding — happens in the parent during the merge.

Degradation is graceful by construction: files smaller than two minimum-
size partitions, ``parallel_workers=1``, or a pool that cannot start all
fall back to the serial path with identical semantics.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro.config import EngineConfig
from repro.core.loader import (
    PassResult,
    _widen_column,
    make_widening_predicate,
    parse_column_with_widening,
)
from repro.errors import FlatFileError
from repro.flatfile.dialects import FormatAdapter
from repro.flatfile.parser import ParseStats, parse_fields
from repro.flatfile.positions import PositionalMap
from repro.flatfile.schema import WIDENS_TO, DataType, TableSchema, widest
from repro.flatfile.tokenizer import (
    TokenizerStats,
    gather_fields,
    tokenize_bytes,
    tokenize_dialect,
)
from repro.ranges import ValueInterval
from repro.storage.catalog import TableEntry

#: Read granularity while aligning a partition boundary to a newline.
_ALIGN_CHUNK = 4096


# ---------------------------------------------------------------------------
# partition planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Partition:
    """One newline-aligned byte range of a flat file.

    ``skip_rows`` is non-zero only for the first partition, which carries
    the header line when the file has one.
    """

    index: int
    byte_start: int
    byte_end: int
    skip_rows: int = 0

    @property
    def nbytes(self) -> int:
        return self.byte_end - self.byte_start


@dataclass
class PartitionIndex:
    """The cached partitioning of one file (analogue of the positional map).

    Cached on the :class:`~repro.storage.catalog.TableEntry` and dropped
    together with all other derived state when the file is edited.
    ``requested`` remembers the partition count asked for, so a config
    change recomputes; ``file_size`` guards against reuse across edits
    that auto-invalidation has not yet observed.
    """

    partitions: list[Partition]
    requested: int
    file_size: int
    probe_bytes: int = 0  # bytes actually read while aligning boundaries
    probe_calls: int = 0  # read() calls issued while aligning

    def __len__(self) -> int:
        return len(self.partitions)

    def as_manifest(self) -> dict:
        """JSON-serializable form, for the persistent store's manifests.

        Probe counters are I/O *history*, not plan state, and are not
        carried: a restored plan cost the restoring engine zero probes.
        """
        return {
            "requested": self.requested,
            "file_size": self.file_size,
            "parts": [
                [p.index, p.byte_start, p.byte_end, p.skip_rows]
                for p in self.partitions
            ],
        }

    @classmethod
    def from_manifest(cls, data: dict) -> "PartitionIndex":
        """Inverse of :meth:`as_manifest` (raises on malformed input)."""
        return cls(
            partitions=[
                Partition(int(i), int(start), int(end), int(skip))
                for i, start, end, skip in data["parts"]
            ],
            requested=int(data["requested"]),
            file_size=int(data["file_size"]),
        )


def plan_partitions(
    path, size: int, nparts: int, skip_rows: int = 0
) -> PartitionIndex:
    """Split ``[0, size)`` into up to ``nparts`` newline-aligned ranges.

    Target boundaries at ``i * size / nparts`` are pushed forward to just
    past the next ``\\n`` byte, so every row lives entirely inside one
    partition.  ``\\n`` is a single byte in UTF-8 and never part of a
    multi-byte sequence, so the alignment is also safe to decode per
    partition.  A boundary whose next newline lies more than one stride
    away is dropped (a row that long makes the split pointless there),
    which bounds total probe I/O at one stride per boundary; degenerate
    plans simply yield fewer partitions, down to one.  The bytes the
    probes actually read are reported in the returned index so the
    caller can charge them to the file's I/O accounting.
    """
    if nparts < 1:
        raise FlatFileError(f"nparts must be >= 1, got {nparts}")
    boundaries = [0]
    stride = max(1, size // nparts)
    probe_bytes = 0
    probe_calls = 0
    with open(path, "rb") as f:
        for i in range(1, nparts):
            target = i * size // nparts
            if target <= boundaries[-1]:
                continue
            f.seek(target)
            aligned = None
            pos = target
            while aligned is None and pos - target < stride:
                chunk = f.read(min(_ALIGN_CHUNK, stride - (pos - target)))
                if not chunk:
                    aligned = size
                    break
                probe_bytes += len(chunk)
                probe_calls += 1
                nl = chunk.find(b"\n")
                if nl != -1:
                    aligned = pos + nl + 1
                pos += len(chunk)
            if aligned is not None and boundaries[-1] < aligned < size:
                boundaries.append(aligned)
    boundaries.append(size)
    partitions = [
        Partition(
            index=i,
            byte_start=start,
            byte_end=end,
            skip_rows=skip_rows if i == 0 else 0,
        )
        for i, (start, end) in enumerate(zip(boundaries, boundaries[1:]))
    ]
    return PartitionIndex(
        partitions=partitions,
        requested=nparts,
        file_size=size,
        probe_bytes=probe_bytes,
        probe_calls=probe_calls,
    )


def partitions_for(entry: TableEntry, config: EngineConfig) -> PartitionIndex | None:
    """The entry's cached partitioning, or ``None`` when serial is better.

    Serial wins when ``parallel_workers`` resolves to one, or when the
    file cannot yield at least two partitions of ``partition_min_bytes``.
    The plan is computed once and cached alongside the positional map;
    the boundary-alignment probe reads are charged to the file's I/O
    counters like any other metadata read.
    """
    workers = config.resolved_parallel_workers()
    if workers <= 1:
        return None
    if not entry.file.adapter.supports_partitioning:
        # Records may span raw newline bytes (quoted CSV): no byte
        # boundary is provably row-aligned, so the scan stays serial.
        return None
    size = entry.file.size_bytes()
    nparts = min(workers, size // config.partition_min_bytes)
    if nparts < 2:
        return None
    cached = entry.partitions
    if (
        cached is not None
        and cached.requested == nparts
        and cached.file_size == size
    ):
        # Degenerate plans are cached too: a file that could not be split
        # (one giant row) must not re-pay the probe on every query.
        return cached if len(cached) >= 2 else None
    skip = 1 if entry.has_header else 0
    pindex = plan_partitions(entry.file.path, size, nparts, skip_rows=skip)
    if pindex.probe_calls:
        entry.file.account_reads(pindex.probe_bytes, calls=pindex.probe_calls)
    entry.partitions = pindex
    return pindex if len(pindex) >= 2 else None


# ---------------------------------------------------------------------------
# the worker
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredicateSpec:
    """A pushdown predicate as plain data, rebuildable inside a worker."""

    col: int
    name: str
    dtype: str  # DataType value at dispatch time
    interval: ValueInterval


@dataclass(frozen=True)
class ScanTask:
    """Everything one worker needs to scan one partition (all picklable).

    Workers receive *byte ranges*, never file content: each worker
    streams its own range straight into the tokenizer, so the only data
    crossing the process boundary on the way back is the (much smaller)
    typed arrays.  ``bandwidth`` carries the file's simulated-disk
    throttle into the worker — each partition pays its own read time
    in-process, concurrently, the way N workers on N real disk streams
    would.
    """

    path: str
    adapter: FormatAdapter
    byte_start: int
    byte_end: int
    skip_rows: int
    ncols: int
    tokenize_cols: tuple[int, ...]
    parse_cols: tuple[tuple[int, str], ...]  # (column index, dtype value)
    predicates: tuple[PredicateSpec, ...]
    early_abort: bool
    vectorized: bool = True
    bandwidth: float | None = None


@dataclass
class ScanResult:
    """One partition's contribution, before the deterministic merge.

    Offsets inside :attr:`learned` and :attr:`row_ids` are relative to
    the partition (character offsets / data-row indices); the merge step
    re-bases them.  Exactly one of :attr:`parsed` / :attr:`raw_fields`
    is populated per needed column: partitions parse locally when no
    predicates are pushed down (reporting the locally-widened dtype),
    and ship raw qualifying fields otherwise so the parent can run the
    shared widening ladder over the merged rows.
    """

    nrows: int
    nbytes: int
    nchars: int
    row_ids: np.ndarray
    parsed: dict[int, tuple[str, np.ndarray]] = field(default_factory=dict)
    raw_fields: dict[int, list[str]] = field(default_factory=dict)
    learned: PositionalMap = field(default_factory=PositionalMap)
    tokenizer: TokenizerStats = field(default_factory=TokenizerStats)
    parse: ParseStats = field(default_factory=ParseStats)
    widened_predicates: dict[int, str] = field(default_factory=dict)


def _predicate_from_spec(
    spec: PredicateSpec, parse_stats: ParseStats, widened: dict[int, str]
):
    """Rebuild a counted, widening pushdown predicate from its spec.

    Same construction as the serial loader (one source of truth:
    :func:`~repro.core.loader.make_widening_predicate`), except the
    column type lives in partition-local state instead of the real
    schema, and every widening is recorded in ``widened`` so the parent
    can replay it onto the schema during the merge.
    """
    state = {"dtype": DataType(spec.dtype)}

    def widen(wider: DataType) -> None:
        state["dtype"] = wider
        widened[spec.col] = wider.value

    return make_widening_predicate(
        spec.name,
        spec.interval,
        get_dtype=lambda: state["dtype"],
        widen=widen,
        parse_stats=parse_stats,
    )


def scan_partition(task: ScanTask) -> ScanResult:
    """Tokenize (and, without predicates, parse) one partition.

    Runs in a worker process.  Reads only the partition's byte range,
    decodes it (safe: boundaries are newline-aligned), and drives the
    ordinary selective tokenizer over it with a fresh partition-local
    positional map, so every serial invariant — blank-line skipping, CRLF
    trimming, early abort, ragged-row errors — holds per partition.
    """
    with open(task.path, "rb") as f:
        f.seek(task.byte_start)
        data = f.read(task.byte_end - task.byte_start)
    if task.bandwidth:
        # Each worker pays its own partition's simulated disk time here,
        # in-process — N partitions on N workers overlap their reads.
        time.sleep(len(data) / task.bandwidth)
    local_map = PositionalMap()
    parse_stats = ParseStats()
    widened: dict[int, str] = {}
    predicates = {
        spec.col: _predicate_from_spec(spec, parse_stats, widened)
        for spec in task.predicates
    }
    result = tokenize_bytes(
        data,
        task.adapter,
        ncols=task.ncols,
        needed=list(task.tokenize_cols),
        early_abort=task.early_abort,
        predicates=predicates,
        positional_map=local_map,
        learn=True,
        skip_rows=task.skip_rows,
        vectorized=task.vectorized,
    )
    # tokenize_bytes recorded the partition's geometry on the local map.
    nchars = local_map.text_geometry[1]
    out = ScanResult(
        nrows=result.stats.rows_scanned,
        nbytes=len(data),
        nchars=nchars,
        row_ids=result.row_ids,
        learned=local_map,
        tokenizer=result.stats,
        parse=parse_stats,
        widened_predicates=widened,
    )
    if predicates:
        # Predicate mode: ship the qualifying rows' raw fields; the
        # parent parses the merged rows through the shared ladder.
        out.raw_fields = {col: result.fields[col] for col, _ in task.parse_cols}
        return out
    for col, dtype_value in task.parse_cols:
        dtype = DataType(dtype_value)
        raw = result.fields[col]
        while True:
            try:
                out.parsed[col] = (dtype.value, parse_fields(raw, dtype, parse_stats))
                break
            except FlatFileError:
                wider = WIDENS_TO.get(dtype)
                if wider is None:
                    raise
                dtype = wider
    return out


# ---------------------------------------------------------------------------
# dispatch + deterministic merge
# ---------------------------------------------------------------------------


def _pool_context(method: str | None):
    """The multiprocessing context for the worker pool.

    ``method=None`` prefers ``fork`` where available: it is cheap, and —
    unlike ``spawn``/``forkserver``, which re-execute the host's
    ``__main__`` in every worker — it never re-runs an unguarded user
    script or breaks stdin-driven/interactive sessions, the bigger
    hazard for a library used from notebooks and one-off scripts.  The
    trade-off: forking a *multi-threaded* host can copy held locks into
    the children (and warns on Python 3.12+).  Threaded services should
    set :attr:`~repro.config.EngineConfig.parallel_start_method` to
    ``"forkserver"`` or ``"spawn"`` explicitly.
    """
    methods = multiprocessing.get_all_start_methods()
    if method is not None:
        if method not in methods:
            raise FlatFileError(
                f"start method {method!r} unavailable on this platform "
                f"(have: {methods})"
            )
        return multiprocessing.get_context(method)
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


#: Shared worker pools, keyed by (start method, worker count).  Workers
#: are stateless (pure functions over picklable tasks), so one pool
#: serves every engine and every file in the process; reuse turns pool
#: start-up from a per-scan cost into a once-per-process cost.
_POOLS: dict[tuple[str | None, int], ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _get_pool(method: str | None, workers: int) -> ProcessPoolExecutor:
    key = (method, workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context(method)
            )
            _POOLS[key] = pool
        return pool


def warm_pool(workers: int, method: str | None = None) -> None:
    """Start (or reuse) the shared pool and wait until it answers.

    The first parallel scan in a process otherwise pays worker start-up
    (and, for spawn-family methods, per-worker interpreter boot) inside
    its own latency.  Long-running services can call this once at boot;
    benchmarks call it so they measure scan throughput, not start-up.
    One no-op task per worker forces the whole pool up.
    """
    pool = _get_pool(method, workers)
    list(pool.map(_warmup_nap, [0.05] * workers))


def _warmup_nap(seconds: float) -> None:
    # Long enough that each idle worker takes one task rather than a
    # single fast worker draining the queue before its siblings start.
    time.sleep(seconds)


def _discard_pool(method: str | None, workers: int) -> None:
    """Drop (and stop) a broken pool so the next scan can rebuild it."""
    with _POOLS_LOCK:
        pool = _POOLS.pop((method, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Stop all shared worker pools (called automatically at exit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def parallel_pass(
    entry: TableEntry,
    schema: TableSchema,
    needed: list[str],
    pred_items: list[tuple[str, ValueInterval]],
    config: EngineConfig,
    pindex: PartitionIndex,
    *,
    tokenize_cols: list[int],
    early_abort: bool,
):
    """Fan one first-pass scan out over the partitions and merge.

    Returns a :class:`~repro.core.loader.PassResult` indistinguishable
    from the serial pass in its *results* — same rows, row ids, widened
    schema and positional-map contents — or ``None`` when the process
    pool cannot start (the caller then falls back to the serial path).
    I/O accounting is honest rather than identical: the partitions'
    reads sum to one full scan like serial, plus the boundary probes
    and, on the rare mixed-dtype rebuild, the extra window reads those
    paths really perform.
    """
    needed_idx: list[int] = []
    for name in needed:
        idx = schema.index_of(name)
        if idx not in needed_idx:
            needed_idx.append(idx)
    specs = tuple(
        PredicateSpec(
            col=schema.index_of(col),
            name=schema.columns[schema.index_of(col)].name,
            dtype=schema.columns[schema.index_of(col)].dtype.value,
            interval=interval,
        )
        for col, interval in pred_items
    )
    parse_cols = tuple(
        (idx, schema.columns[idx].dtype.value) for idx in needed_idx
    )
    tasks = [
        ScanTask(
            path=str(entry.file.path),
            adapter=entry.file.adapter,
            byte_start=p.byte_start,
            byte_end=p.byte_end,
            skip_rows=p.skip_rows,
            ncols=len(schema),
            tokenize_cols=tuple(tokenize_cols),
            parse_cols=parse_cols,
            predicates=specs,
            early_abort=early_abort,
            vectorized=config.vectorized_tokenizer,
            bandwidth=entry.file.bandwidth_bytes_per_sec,
        )
        for p in pindex.partitions
    ]
    workers = min(config.resolved_parallel_workers(), len(tasks))
    method = config.parallel_start_method
    try:
        # Fault point ``pool.worker``: simulate the pool dying mid-pass.
        # Raised inside the try so the *real* recovery below runs — the
        # broken pool is discarded and the caller falls back to a serial
        # scan with this pass's partial work dropped atomically (the
        # entry is only mutated by _merge_results, after a full map).
        plan = entry.file.fault_plan
        if plan is not None:
            plan.check("pool.worker")
        results = list(_get_pool(method, workers).map(scan_partition, tasks))
    except (BrokenProcessPool, OSError, PermissionError):
        _discard_pool(method, workers)
        return None
    return _merge_results(entry, schema, needed, results, config)


def _merge_results(
    entry: TableEntry,
    schema: TableSchema,
    needed: list[str],
    results: list[ScanResult],
    config: EngineConfig,
):
    """Stitch partition outputs back into one serial-equivalent pass."""
    nrows = sum(r.nrows for r in results)
    row_bases = np.cumsum([0] + [r.nrows for r in results[:-1]])
    char_bases = np.cumsum([0] + [r.nchars for r in results[:-1]])
    row_ids = np.concatenate(
        [r.row_ids + base for r, base in zip(results, row_bases.tolist())]
    )
    tok_stats = TokenizerStats()
    parse_stats = ParseStats()
    for r in results:
        tok_stats.merge(r.tokenizer)
        parse_stats.merge(r.parse)

    # Replay per-partition predicate widenings onto the real schema,
    # widest outcome wins (the ladder is confluent: every partition walks
    # the same steps, just possibly fewer of them).
    pred_widened: dict[int, list[DataType]] = {}
    for r in results:
        for col, dtype_value in r.widened_predicates.items():
            pred_widened.setdefault(col, []).append(DataType(dtype_value))
    for col, dtypes in pred_widened.items():
        _widen_column(entry, col, widest(dtypes))

    if config.use_positional_map:
        entry.positional_map.absorb_partitions(
            [r.learned for r in results], char_bases.tolist()
        )

    # The partitions tile the file: together they are one full scan.
    # Workers already slept their simulated disk time in-process.
    entry.file.account_reads(
        sum(r.nbytes for r in results),
        calls=len(results),
        full_scan=True,
        throttled=True,
    )

    predicate_mode = any(len(r.raw_fields) for r in results)
    columns: dict[str, np.ndarray] = {}
    full_text: str | None = None
    for name in needed:
        idx = schema.index_of(name)
        if predicate_mode:
            parts = [r.raw_fields[idx] for r in results]
            if parts and all(isinstance(p, np.ndarray) for p in parts):
                # Vectorized workers ship string arrays: concatenate and
                # parse the merged column in one bulk conversion.
                raw: "list[str] | np.ndarray" = np.concatenate(parts)
            else:
                raw = []
                for p in parts:
                    raw.extend(p)
            columns[schema.columns[idx].name] = parse_column_with_widening(
                entry, idx, raw, parse_stats
            )
            continue
        part_dtypes = [DataType(r.parsed[idx][0]) for r in results]
        target = widest(part_dtypes)
        if target is DataType.STRING and any(
            d is not DataType.STRING for d in part_dtypes
        ):
            # A numeric partition cannot be upcast to the exact raw text
            # (formatting was lost in parsing); rebuild the column from
            # the file via the merged field slices.  Rare — it needs a
            # column that is numeric in some partitions and not others.
            if not all(r.learned.can_slice(idx) for r in results):
                # Span-less dialect (JSON-lines): no field slices exist;
                # re-tokenize just this column from the full text.
                if full_text is None:
                    full_text = entry.file.read_all()
                res = tokenize_dialect(
                    full_text,
                    entry.file.adapter,
                    ncols=len(schema),
                    needed=[idx],
                    early_abort=True,
                    learn=False,
                    skip_rows=1 if entry.has_header else 0,
                )
                tok_stats.merge(res.stats)
                columns[schema.columns[idx].name] = parse_fields(
                    res.fields[idx], DataType.STRING, parse_stats
                )
                _widen_column(entry, idx, target)
                continue
            starts = np.concatenate(
                [
                    r.learned.field_offsets[idx] + base
                    for r, base in zip(results, char_bases.tolist())
                ]
            )
            ends = np.concatenate(
                [
                    r.learned.field_ends[idx] + base
                    for r, base in zip(results, char_bases.tolist())
                ]
            )
            if sum(r.nbytes for r in results) == sum(r.nchars for r in results):
                # Single-byte text: char offsets are byte offsets, so the
                # selective-read machinery fetches just this column.
                windows = entry.file.read_windows(
                    starts,
                    ends,
                    max_gap=config.selective_read_max_gap,
                    workers=config.resolved_parallel_workers(),
                )
                raw = gather_fields(
                    windows.buffer, windows.translate(starts), ends - starts
                )
            else:
                # Multi-byte text: offsets only index the decoded string.
                if full_text is None:
                    full_text = entry.file.read_all()
                raw = [
                    full_text[s:e]
                    for s, e in zip(starts.tolist(), ends.tolist())
                ]
            # Spans hold *encoded* field text; undo dialect encoding.
            raw = entry.file.adapter.decode_many(raw)
            merged = parse_fields(raw, DataType.STRING, parse_stats)
        else:
            merged = np.concatenate(
                [
                    r.parsed[idx][1].astype(target.numpy_dtype)
                    if DataType(r.parsed[idx][0]) is not target
                    else r.parsed[idx][1]
                    for r in results
                ]
            )
        if schema.columns[idx].dtype is not target:
            _widen_column(entry, idx, target)
        columns[schema.columns[idx].name] = merged

    return PassResult(
        nrows=nrows,
        columns=columns,
        row_ids=row_ids,
        tokenizer=tok_stats,
        parse=parse_stats,
        partitions=len(results),
    )
