"""File cracking: dynamic splitting of flat files (paper section 4).

"Both of these goals can be achieved if we incrementally and adaptively
split the file during the loading phase such as future loading steps can
locate the needed data much easier."

A :class:`SplitFileCatalog` tracks, for every column of an attached flat
file, where that column's raw text currently lives:

* in a **single file** (one value per line) — the column was tokenized by
  some earlier pass and written out on the side;
* in a **remainder file** — a vertical slice of the original file holding
  a contiguous range of not-yet-tokenized columns (initially, the original
  flat file itself holds columns ``0..ncols-1``).

Loading a column whose home is a remainder tokenizes the remainder up to
that column, writes one single file per newly tokenized column, writes a
new remainder for the columns to its right, and updates the catalog —
exactly the side-effect reorganization of section 4.2.  Each subsequent
read therefore touches fewer bytes and trivially tokenizable files, which
is where the Figure 4 "Split Files" curve gets its small peaks.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import FlatFileError
from repro.flatfile.files import FlatFile
from repro.flatfile.tokenizer import TokenizerStats, tokenize_bytes


@dataclass
class ColumnHome:
    """Where one column's raw text lives right now."""

    kind: str  # 'original' | 'single' | 'remainder'
    file: FlatFile
    offset: int  # column index within the file
    skip_rows: int = 0  # header lines to skip (original file only)


@dataclass
class SplitResult:
    """Raw column texts produced by one split pass."""

    fields: dict[int, list[str]]  # global column index -> raw values
    stats: TokenizerStats
    files_written: int = 0


@dataclass
class SplitFileCatalog:
    """Split-file state for one attached flat file."""

    source: FlatFile
    directory: Path
    ncols: int
    table_key: str
    skip_rows: int = 0
    #: Route remainder tokenization through the vectorized kernel (the
    #: engine mirrors ``EngineConfig.vectorized_tokenizer`` here).
    vectorized: bool = True
    homes: dict[int, ColumnHome] = field(default_factory=dict)
    _counter: int = 0
    files_written: int = 0

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if not self.homes:
            for c in range(self.ncols):
                self.homes[c] = ColumnHome(
                    "original", self.source, c, skip_rows=self.skip_rows
                )

    # ------------------------------------------------------------- loading

    def fetch_columns(self, needed: list[int]) -> SplitResult:
        """Return raw text values for ``needed`` columns, splitting as we go.

        Groups the needed columns by their current home file so each file
        is read at most once per call.
        """
        out: dict[int, list[str]] = {}
        stats = TokenizerStats()
        written = 0
        by_file: dict[int, list[int]] = {}
        file_of: dict[int, ColumnHome] = {}
        for col in sorted(set(needed)):
            if col < 0 or col >= self.ncols:
                raise FlatFileError(f"column {col} out of range (ncols={self.ncols})")
            home = self.homes[col]
            by_file.setdefault(id(home.file), []).append(col)
            file_of[id(home.file)] = home
        for fkey, cols in by_file.items():
            home = file_of[fkey]
            if home.kind == "single":
                for col in cols:
                    values, s = self._read_single(self.homes[col])
                    out[col] = values
                    stats.merge(s)
            else:
                got, s, w = self._split_from(home, cols)
                out.update(got)
                stats.merge(s)
                written += w
        self.files_written += written
        return SplitResult(out, stats, written)

    def _read_single(self, home: ColumnHome) -> tuple[list[str], TokenizerStats]:
        text = home.file.read_all()
        stats = TokenizerStats()
        values = [line for line in text.split("\n") if line]
        stats.rows_scanned = len(values)
        stats.rows_emitted = len(values)
        stats.fields_tokenized = len(values)
        stats.chars_scanned = len(text)
        return values, stats

    def _split_from(
        self, home: ColumnHome, global_cols: list[int]
    ) -> tuple[dict[int, list[str]], TokenizerStats, int]:
        """Tokenize a remainder/original file and split it on the way out."""
        # Which global columns does this file hold, in file order?
        members = sorted(
            c for c, h in self.homes.items() if h.file is home.file
        )
        local_of = {c: self.homes[c].offset for c in members}
        width = len(members)
        max_needed_local = max(local_of[c] for c in global_cols)
        data = home.file.read_all_bytes()
        local_needed = list(range(max_needed_local + 1))
        result = tokenize_bytes(
            data,
            home.file.adapter,
            ncols=width,
            needed=local_needed,
            early_abort=True,
            skip_rows=home.skip_rows,
            vectorized=self.vectorized,
        )
        out: dict[int, list[str]] = {}
        local_to_global = {local_of[c]: c for c in members}
        written = 0
        # Write one single file per tokenized column and repoint its home.
        for local in local_needed:
            gcol = local_to_global[local]
            values = result.fields[local]
            if gcol in global_cols:
                out[gcol] = values
            single_path = self.directory / f"{self.table_key}_col{gcol}.txt"
            _write_lines(single_path, values)
            written += 1
            self.homes[gcol] = ColumnHome("single", FlatFile(single_path), 0)
        # Write the non-tokenized tail columns into one new remainder.
        tail_locals = [loc for loc in range(width) if loc > max_needed_local]
        if tail_locals:
            tail_path = self.directory / f"{self.table_key}_rem{self._counter}.txt"
            self._counter += 1
            self._write_remainder(
                data.decode("utf-8"), result, tail_path, home
            )
            written += 1
            tail_file = FlatFile(tail_path, delimiter=home.file.delimiter)
            for new_local, local in enumerate(tail_locals):
                gcol = local_to_global[local]
                self.homes[gcol] = ColumnHome("remainder", tail_file, new_local)
        return out, result.stats, written

    def _write_remainder(
        self, text: str, result, tail_path: Path, home: ColumnHome
    ) -> None:
        """Write the untokenized right part of every row to ``tail_path``.

        The tokenizer located the end of the last tokenized field of each
        row; the tail is everything after the following delimiter.  We
        recompute tail starts from the recorded field texts, which keeps
        this function independent of tokenizer internals.
        """
        from repro.flatfile.dialects import newline_row_bounds  # shared row scan

        starts, ends = newline_row_bounds(text)
        starts = starts[home.skip_rows :]
        ends = ends[home.skip_rows :]
        # Tail begins after the last tokenized field + its delimiter.  The
        # tokenized fields of row i have known total length: sum of field
        # lengths + one delimiter each.
        lengths = np.zeros(len(starts), dtype=np.int64)
        for local, values in result.fields.items():
            lengths += np.fromiter(
                (len(v) + 1 for v in values), dtype=np.int64, count=len(values)
            )
        with open(tail_path, "w", encoding="utf-8", newline="") as f:
            for i in range(len(starts)):
                tail_start = int(starts[i] + lengths[i])
                f.write(text[tail_start : int(ends[i])])
                f.write("\n")

    # ---------------------------------------------------------- accounting

    def bytes_on_disk(self) -> int:
        """Total size of split files (the storage-doubling cost, 4.2.1)."""
        total = 0
        seen = set()
        for home in self.homes.values():
            if home.kind == "original":
                continue
            if home.file.path in seen:
                continue
            seen.add(home.file.path)
            if home.file.path.exists():
                total += home.file.path.stat().st_size
        return total

    def io_bytes_read(self) -> int:
        """Bytes read from split files (derived, not the original)."""
        total = 0
        seen = set()
        for home in self.homes.values():
            if home.kind == "original" or id(home.file) in seen:
                continue
            seen.add(id(home.file))
            total += home.file.stats.bytes_read
        return total

    def destroy(self) -> None:
        """Delete all split files (source edited -> derived data invalid)."""
        seen = set()
        for home in self.homes.values():
            if home.kind != "original" and home.file.path not in seen:
                seen.add(home.file.path)
                home.file.path.unlink(missing_ok=True)
        self.homes = {
            c: ColumnHome("original", self.source, c, skip_rows=self.skip_rows)
            for c in range(self.ncols)
        }
        self._counter = 0


def _write_lines(path: Path, values) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as f:
        f.write("\n".join(values))
        if len(values):
            f.write("\n")


def cleanup_directory(directory: Path) -> None:
    """Remove a split-file working directory entirely (engine shutdown)."""
    shutil.rmtree(directory, ignore_errors=True)
