"""Append-extension: grow learned state instead of wiping it.

The fingerprint treats any file change as staleness, but the dominant
change on real serving data is a *pure tail-append* to a growing log:
every byte the engine learned from is still there, followed by new ones.
Learned structures are themselves derived data worth preserving — a
positional map over 100M rows does not become wrong because 1M rows
arrived after it — so this module extends them incrementally:

* the **positional map** absorbs row/field offsets for the appended
  region only (tokenized standalone, shifted by the old text geometry);
* fully loaded **store columns** parse and concatenate just the appended
  values, staying fully loaded (partial fragments drop: their coverage
  certificates no longer describe the grown row space);
* **zone maps** merge the boundary zone and append new zones (zone
  statistics are associative);
* the **partition plan** gains one tail partition covering the new
  bytes.

Crackers and cached query results are *not* extended — their answers
genuinely changed — and the engine invalidates them alongside.  Every
precondition failure falls back to full invalidation, which is always
correct; extension is strictly an optimization.

All of this runs under the table's write lock, from the same staleness
check that would otherwise wipe the entry.
"""

from __future__ import annotations

import numpy as np

from repro.config import EngineConfig
from repro.core.loader import parse_column_with_widening
from repro.core.partitions import Partition, PartitionIndex
from repro.errors import FlatFileError
from repro.flatfile.files import FileFingerprint
from repro.flatfile.parser import ParseStats
from repro.flatfile.positions import PositionalMap
from repro.flatfile.tokenizer import tokenize_bytes
from repro.storage.catalog import TableEntry
from repro.storage.memory import MemoryManager


def extend_entry_for_append(
    entry: TableEntry,
    old: FileFingerprint,
    new: FileFingerprint,
    config: EngineConfig,
    memory: MemoryManager,
) -> bool:
    """Extend ``entry``'s learned state over a verified tail-append.

    The caller holds the table's write lock and has already established
    (via :func:`repro.flatfile.files.detect_tail_append`) that the file
    grew from ``old`` to ``new`` with the prior region byte-identical.
    Returns True when every structure was extended consistently; False
    declines, and the caller must fall back to full invalidation.  The
    appended region is the only part of the file this function reads.
    """
    table = entry.table
    if table is None:
        return False
    adapter = entry.file.adapter
    if not adapter.supports_partitioning:
        # Records may span lines (quoted CSV): the appended bytes cannot
        # be framed as a standalone document.
        return False
    schema = entry.ensure_schema()
    pm = entry.positional_map
    if pm.nrows is not None and pm.nrows != table.nrows:
        return False
    if entry.zone_maps is not None and entry.zone_maps.nrows != table.nrows:
        entry.zone_maps = None
    try:
        # Tokenizing the appended bytes standalone is only sound when the
        # old content ended at a record boundary.
        if entry.file.read_range_bytes(old.size - 1, old.size) != b"\n":
            return False
        data = entry.file.read_range_bytes(old.size, new.size)
    except FlatFileError:
        return False

    # Columns whose appended values matter: spans the positional map
    # knows, fully loaded store columns, and zone-mapped columns.
    full_idx: set[int] = set()
    for pc in table.columns.values():
        if pc.is_fully_loaded and pc.values is not None:
            try:
                full_idx.add(schema.index_of(pc.name))
            except KeyError:
                return False
    want = set(pm.field_offsets) | full_idx
    if entry.zone_maps is not None:
        want |= set(entry.zone_maps.columns)
    want &= set(range(len(schema)))

    tail_map = PositionalMap()
    try:
        result = tokenize_bytes(
            data,
            adapter,
            ncols=len(schema),
            needed=sorted(want) if want else [0],
            early_abort=config.tokenizer_early_abort,
            predicates={},
            positional_map=tail_map,
            learn=True,
            skip_rows=0,
            vectorized=config.vectorized_tokenizer,
        )
    except FlatFileError:
        return False
    added = result.stats.rows_scanned
    if added == 0:
        # Only blank lines were appended: nothing semantic changed, the
        # caller just re-brands the entry with the new fingerprint.
        return True
    new_nrows = table.nrows + added

    # Parse the appended values of every column that keeps typed state.
    # Parsing may widen the schema exactly as a cold scan would (the
    # widening converts or drops the store column and its zones itself).
    parse_idx = set(full_idx)
    if entry.zone_maps is not None:
        parse_idx |= set(entry.zone_maps.columns)
    parse_stats = ParseStats()
    appended_idx: dict[int, np.ndarray] = {}
    try:
        for idx in sorted(parse_idx):
            raw = result.fields.get(idx)
            if raw is None or len(raw) != added:
                return False
            appended_idx[idx] = parse_column_with_widening(
                entry, idx, raw, parse_stats
            )
    except FlatFileError:
        return False

    pm.extend_tail(tail_map, added)

    appended_by_key = {
        schema.columns[idx].name.lower(): values
        for idx, values in appended_idx.items()
    }
    kept = table.grow(new_nrows, appended_by_key)
    for key, stayed in kept.items():
        pc = table.columns[key]
        mkey = (table.name, pc.name)
        if stayed and pc.values is not None:

            def dropper(pc=pc):
                pc.drop()

            # Concatenation moved any memmap backing onto the heap.
            memory.register(mkey, pc.logical_nbytes, dropper, mapped=False)
        else:
            memory.forget(mkey)

    if entry.zone_maps is not None:
        entry.zone_maps = entry.zone_maps.extended(new_nrows, appended_idx)

    pidx = entry.partitions
    if pidx is not None and pidx.file_size == old.size:
        tail_part = Partition(
            index=len(pidx.partitions),
            byte_start=old.size,
            byte_end=new.size,
            skip_rows=0,
        )
        entry.partitions = PartitionIndex(
            partitions=list(pidx.partitions) + [tail_part],
            requested=pidx.requested,
            file_size=new.size,
        )
    else:
        entry.partitions = None

    if entry.split_catalog is not None:
        # Split per-column files cover the old rows only; rebuild lazily.
        entry.split_catalog.destroy()
        entry.split_catalog = None
    return True
