"""Query-result caching: finished results as first-class, reusable data.

"Here are my queries — where are my results?"  Once a query has been
answered, the answer itself is the most valuable artifact the engine
holds: serving it again costs nothing but a staleness check.  The
:class:`QueryResultCache` stores completed :class:`~repro.result.QueryResult`
objects keyed by the *normalized* query (the parsed statement, so
whitespace/keyword-case variants share one entry) together with a
signature of every referenced flat file.

Staleness is the whole design problem.  A cached result is only
servable while every underlying file is byte-identical to the one the
result was computed from.  The signature is exactly the engine's
:class:`~repro.flatfile.files.FileFingerprint` — size + mtime_ns +
inode + a bounded head/tail content probe — **deliberately the same
mechanism, at the same strength, as the adaptive store's staleness
check**: were the cache's identity stronger than the store's, a
same-size same-mtime rewrite could leave the store serving stale
fragments whose (stale) results the cache would then re-key under the
fresh signature, poisoning it permanently.

Cached bytes are charged to the engine's :class:`~repro.storage.memory.
MemoryManager` budget, so results compete with adaptive-store fragments
under the same eviction policy, and the cache is also bounded by entry
count (``EngineConfig.max_cached_results``).  Invalidation rides the
same path that drops positional maps: the engine calls
:meth:`invalidate_table` from ``_invalidate_entry``.

Lock ordering: the memory manager may call this cache's dropper while
holding its own lock, so the cache NEVER calls into the memory manager
while holding the cache lock — every register/touch/forget happens after
the critical section.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.flatfile.files import FileFingerprint
from repro.result import QueryResult
from repro.storage.memory import MemoryManager

#: The cache keys on the engine's own file identity (see module
#: docstring for why the strengths must match); the alias keeps the
#: cache-facing name descriptive.
FileSignature = FileFingerprint

#: Namespace used for result-cache charges in the MemoryManager, chosen
#: so it can never collide with a (table, column) fragment key.
_MEMORY_NAMESPACE = "::result-cache::"


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters (all guarded by the cache lock)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    evictions: int = 0


@dataclass
class _Entry:
    result: QueryResult
    signatures: tuple[tuple[str, FileSignature], ...]
    nbytes: int


def result_nbytes(result: QueryResult) -> int:
    """Budget-accounted size of one cached result."""
    total = 0
    for column in result.columns:
        if column.dtype == object:
            total += sum(len(str(v)) + 49 for v in column)  # CPython str overhead
        else:
            total += column.nbytes
    return total + 256  # key + bookkeeping overhead


class QueryResultCache:
    """Thread-safe LRU cache of completed query results.

    Parameters
    ----------
    memory:
        The engine's memory manager; every stored result is registered
        there so cached bytes count against (and are evictable under)
        the adaptive-store budget.  ``None`` disables budget accounting.
    max_entries:
        Hard cap on cached results; the least recently used entry is
        dropped when the cap is exceeded.
    """

    def __init__(self, memory: MemoryManager | None = None, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._memory = memory
        self._max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: table key (lower-cased) -> cache keys referencing that table
        self._by_table: dict[str, set[str]] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -------------------------------------------------------------- keying

    @staticmethod
    def key_for(normalized_query: str, table_keys: list[str]) -> str:
        """Cache key: normalized statement + the tables it touches."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(normalized_query.encode("utf-8"))
        for key in sorted(table_keys):
            digest.update(b"\x00")
            digest.update(key.encode("utf-8"))
        return digest.hexdigest()

    # -------------------------------------------------------------- lookup

    def lookup(
        self, key: str, current: dict[str, FileSignature]
    ) -> QueryResult | None:
        """Return the cached result for ``key`` if every file signature
        still matches ``current``; drop the entry and miss otherwise."""
        hit: QueryResult | None = None
        forget = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if all(
                current.get(table_key) == signature
                for table_key, signature in entry.signatures
            ):
                self._entries.move_to_end(key)
                self.stats.hits += 1
                # Read-only views of the cached (read-only) arrays: a
                # caller mutating a served result must fail loudly, not
                # poison every future hit.  Fresh stats dict per caller
                # (the engine overwrites result.stats).
                hit = QueryResult(
                    names=list(entry.result.names),
                    columns=[c.view() for c in entry.result.columns],
                )
            else:
                self._drop(key, count_as="invalidation")
                self.stats.misses += 1
                forget = True
        if self._memory is not None:
            if hit is not None:
                self._memory.touch((_MEMORY_NAMESPACE, key))
            elif forget:
                self._forget_if_uncached([key])
        return hit

    # --------------------------------------------------------------- store

    def store(
        self,
        key: str,
        result: QueryResult,
        signatures: dict[str, FileSignature],
    ) -> None:
        # The cache owns private, frozen copies: the storing caller keeps
        # (and may mutate) its own arrays without reaching the cache.
        frozen = []
        for column in result.columns:
            copy = column.copy()
            copy.setflags(write=False)
            frozen.append(copy)
        entry = _Entry(
            result=QueryResult(names=list(result.names), columns=frozen),
            signatures=tuple(sorted(signatures.items())),
            nbytes=result_nbytes(result),
        )
        evicted: list[str] = []
        with self._lock:
            if key in self._entries:
                self._drop(key, count_as=None)
            self._entries[key] = entry
            for table_key, _ in entry.signatures:
                self._by_table.setdefault(table_key, set()).add(key)
            self.stats.stores += 1
            while len(self._entries) > self._max_entries:
                victim = next(iter(self._entries))
                self._drop(victim, count_as="eviction")
                evicted.append(victim)
        if self._memory is None:
            return
        self._forget_if_uncached(evicted)
        self._memory.register(
            (_MEMORY_NAMESPACE, key),
            entry.nbytes,
            dropper=lambda: self._drop_from_memory(key),
        )
        # The entry may have been invalidated between insert and register
        # (its forget then preceded this register): drop the orphan charge.
        with self._lock:
            still_cached = key in self._entries
        if not still_cached:
            self._memory.forget((_MEMORY_NAMESPACE, key))

    # --------------------------------------------------------- invalidation

    def invalidate_table(self, table_key: str) -> int:
        """Drop every cached result that references ``table_key``.

        Called by the engine's invalidation path — the same one that
        drops positional maps and loaded fragments when a flat file is
        edited, detached or cleared.  Returns the number dropped.
        """
        with self._lock:
            keys = list(self._by_table.get(table_key.lower(), ()))
            for key in keys:
                self._drop(key, count_as="invalidation")
        self._forget_if_uncached(keys)
        return len(keys)

    def clear(self) -> None:
        with self._lock:
            keys = list(self._entries)
            for key in keys:
                self._drop(key, count_as="invalidation")
        self._forget_if_uncached(keys)

    # ------------------------------------------------------------ internals

    def _forget_if_uncached(self, keys: list[str]) -> None:
        """Drop memory charges for keys no longer cached.

        The forget happens outside the cache lock (lock ordering), so a
        concurrent ``store`` may have re-inserted the same key in the
        meantime — in that case its fresh charge must survive, hence the
        per-key re-check instead of an unconditional forget.
        """
        if self._memory is None:
            return
        for key in keys:
            with self._lock:
                cached = key in self._entries
            if not cached:
                self._memory.forget((_MEMORY_NAMESPACE, key))

    def _drop_from_memory(self, key: str) -> None:
        """Dropper the MemoryManager calls when evicting a cached result.

        The manager has already removed the charge, so this must not call
        back into it (it may hold the manager's lock).
        """
        with self._lock:
            self._drop(key, count_as="eviction")

    def _drop(self, key: str, count_as: str | None) -> None:
        """Remove ``key`` from the cache maps (cache lock held; no memory
        manager calls — callers forget the charge outside the lock)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for table_key, _ in entry.signatures:
            refs = self._by_table.get(table_key)
            if refs is not None:
                refs.discard(key)
                if not refs:
                    del self._by_table[table_key]
        if count_as == "invalidation":
            self.stats.invalidations += 1
        elif count_as == "eviction":
            self.stats.evictions += 1
