"""Zone maps: per-row-range min/max/null-count statistics for skipping.

A :class:`ZoneMapIndex` partitions a table's row space into fixed-size
zones (``zone_rows`` rows each — the logical analogue of the parallel
scan's row-range partitions) and records, per numeric column, each
zone's minimum, maximum and NaN count.  The statistics are learned as a
side effect of passes that already parse a full column — the paper's
"indexes as a by-product of queries" applied to skipping — and consulted
by the selective-read path: a zone whose ``[min, max]`` cannot intersect
a range predicate is skipped without issuing a single window read.

NaN soundness
-------------

Per-zone min/max are computed with ``np.fmin``/``np.fmax`` reductions,
which ignore NaNs: a zone mixing NaNs and finite values keeps its finite
min/max (so it is never skipped while a finite value could match), and
an all-NaN zone gets NaN statistics.  The skip test compares with the
same ``>``/``>=``/``<``/``<=`` operators :meth:`ValueInterval.mask`
uses, and NaN comparisons are always False — so an all-NaN zone is
skipped exactly when the interval has at least one bound, which is
precisely when the mask would reject every NaN row anyway.

Exactness
---------

Zone min/max are stored in the column's *native* dtype (never rounded
through float64 for int columns).  Because the skip test uses the same
comparison operators — and numpy's type promotion is monotone — "the
zone's max fails ``> lo``" implies every value in the zone fails it:
skipping is sound even for int64 values beyond float53 precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ranges import ValueInterval


def _jsonable(values: np.ndarray) -> list:
    """JSON-safe list form of a min/max array (NaN encodes as null)."""
    if values.dtype.kind == "f":
        return [None if math.isnan(v) else float(v) for v in values.tolist()]
    return [int(v) for v in values.tolist()]


def _from_jsonable(items: list, dtype: np.dtype) -> np.ndarray:
    if dtype.kind == "f":
        return np.array(
            [math.nan if v is None else float(v) for v in items], dtype=dtype
        )
    return np.array([int(v) for v in items], dtype=dtype)


@dataclass
class ColumnZones:
    """One column's per-zone statistics (arrays of length ``nzones``)."""

    mins: np.ndarray
    maxs: np.ndarray
    nulls: np.ndarray  # per-zone NaN counts (all zeros for int columns)

    def __post_init__(self) -> None:
        if not (len(self.mins) == len(self.maxs) == len(self.nulls)):
            raise ValueError("zone statistic arrays must have equal length")


@dataclass
class ZoneMapIndex:
    """Per-column zone statistics over a fixed row-range partitioning."""

    nrows: int
    zone_rows: int
    columns: dict[int, ColumnZones] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nrows <= 0:
            raise ValueError("zone maps require a positive row count")
        if self.zone_rows <= 0:
            raise ValueError("zone_rows must be positive")

    @property
    def nzones(self) -> int:
        return -(-self.nrows // self.zone_rows)

    def has(self, col: int) -> bool:
        return col in self.columns

    # ------------------------------------------------------------ learning

    def learn(self, col: int, values: np.ndarray) -> None:
        """Record zone statistics from one fully parsed column.

        Declines silently on anything unusable (wrong length, non-numeric
        dtype): zone maps are an opportunistic by-product, never a
        requirement.
        """
        if len(values) != self.nrows or values.dtype.kind not in "if":
            return
        starts = np.arange(self.nzones, dtype=np.int64) * self.zone_rows
        if values.dtype.kind == "f":
            # fmin/fmax ignore NaN: a mixed zone keeps its finite bounds,
            # an all-NaN zone gets NaN bounds (skipped whenever a bound
            # exists — exactly matching ValueInterval.mask on NaN rows).
            mins = np.fmin.reduceat(values, starts)
            maxs = np.fmax.reduceat(values, starts)
            nulls = np.add.reduceat(np.isnan(values).astype(np.int64), starts)
        else:
            mins = np.minimum.reduceat(values, starts)
            maxs = np.maximum.reduceat(values, starts)
            nulls = np.zeros(self.nzones, dtype=np.int64)
        self.columns[col] = ColumnZones(mins=mins, maxs=maxs, nulls=nulls)

    def drop_column(self, col: int) -> None:
        self.columns.pop(col, None)

    def extended(
        self, new_nrows: int, appended: dict[int, np.ndarray]
    ) -> "ZoneMapIndex":
        """A new index covering ``new_nrows`` rows after a tail-append.

        ``appended[col]`` holds the parsed values of the appended rows
        (length ``new_nrows - self.nrows``).  Zone statistics are
        associative, so the old zones survive untouched, the boundary
        zone (when the old row count did not land on a zone edge) merges
        its old bounds with the appended portion, and whole new zones are
        reduced from the appended values alone.  Columns without usable
        appended values (missing, wrong length, dtype changed) are
        dropped — they can be relearned by a later full-column parse.
        """
        added = new_nrows - self.nrows
        if added <= 0:
            raise ValueError("extended() requires a grown row count")
        out = ZoneMapIndex(nrows=new_nrows, zone_rows=self.zone_rows)
        first = self.nrows // self.zone_rows  # first zone touching new rows
        remainder = self.nrows % self.zone_rows
        starts = (
            np.arange(first, -(-new_nrows // self.zone_rows), dtype=np.int64)
            * self.zone_rows
        )
        local = np.maximum(starts - self.nrows, 0)
        for col, zones in self.columns.items():
            values = appended.get(col)
            if (
                values is None
                or len(values) != added
                or values.dtype != zones.mins.dtype
            ):
                continue
            if values.dtype.kind == "f":
                mins = np.fmin.reduceat(values, local)
                maxs = np.fmax.reduceat(values, local)
                nulls = np.add.reduceat(np.isnan(values).astype(np.int64), local)
            else:
                mins = np.minimum.reduceat(values, local)
                maxs = np.maximum.reduceat(values, local)
                nulls = np.zeros(len(local), dtype=np.int64)
            if remainder:
                # The old last zone was partial: fold its bounds into the
                # first reduced zone (fmin/fmax keep NaN-ignoring merge).
                if values.dtype.kind == "f":
                    mins[0] = np.fmin(mins[0], zones.mins[first])
                    maxs[0] = np.fmax(maxs[0], zones.maxs[first])
                else:
                    mins[0] = min(mins[0], zones.mins[first])
                    maxs[0] = max(maxs[0], zones.maxs[first])
                nulls[0] += zones.nulls[first]
            out.columns[col] = ColumnZones(
                mins=np.concatenate([zones.mins[:first], mins]),
                maxs=np.concatenate([zones.maxs[:first], maxs]),
                nulls=np.concatenate([zones.nulls[:first], nulls]),
            )
        return out

    # ------------------------------------------------------------ skipping

    def zone_keep_mask(self, col: int, interval: ValueInterval) -> np.ndarray | None:
        """Boolean mask of zones that *may* contain a qualifying row.

        ``None`` declines (no statistics for the column, or bounds the
        zone comparison cannot reason about) — the caller must then scan
        normally.  The test mirrors :meth:`ValueInterval.mask`: a zone is
        kept unless its max fails the lower bound or its min fails the
        upper bound, under the interval's own open/closed operators.
        """
        zones = self.columns.get(col)
        if zones is None or not _comparable_bounds(interval):
            return None
        keep = np.ones(len(zones.mins), dtype=bool)
        if interval.lo is not None:
            keep &= (
                (zones.maxs > interval.lo)
                if interval.lo_open
                else (zones.maxs >= interval.lo)
            )
        if interval.hi is not None:
            keep &= (
                (zones.mins < interval.hi)
                if interval.hi_open
                else (zones.mins <= interval.hi)
            )
        return keep

    def zone_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Zone index of each row id (zones are fixed-size row ranges)."""
        return rows // self.zone_rows

    # --------------------------------------------------------- persistence

    def snapshot(self) -> "ZoneMapIndex":
        """Shallow copy sharing the (immutable-by-convention) arrays."""
        return ZoneMapIndex(
            nrows=self.nrows, zone_rows=self.zone_rows, columns=dict(self.columns)
        )

    def as_manifest(self) -> dict:
        """JSON-safe form for the persistent store's manifest."""
        return {
            "nrows": self.nrows,
            "zone_rows": self.zone_rows,
            "columns": {
                str(col): {
                    "dtype": str(zones.mins.dtype),
                    "mins": _jsonable(zones.mins),
                    "maxs": _jsonable(zones.maxs),
                    "nulls": [int(v) for v in zones.nulls.tolist()],
                }
                for col, zones in self.columns.items()
            },
        }

    @classmethod
    def from_manifest(cls, manifest: dict) -> "ZoneMapIndex":
        """Inverse of :meth:`as_manifest`; raises on damaged input (the
        persistent store turns any such error into a plain cold miss)."""
        index = cls(
            nrows=int(manifest["nrows"]), zone_rows=int(manifest["zone_rows"])
        )
        for col, entry in (manifest.get("columns") or {}).items():
            dtype = np.dtype(str(entry["dtype"]))
            if dtype.kind not in "if":
                raise ValueError(f"zone map column {col}: bad dtype {dtype}")
            zones = ColumnZones(
                mins=_from_jsonable(entry["mins"], dtype),
                maxs=_from_jsonable(entry["maxs"], dtype),
                nulls=np.array([int(v) for v in entry["nulls"]], dtype=np.int64),
            )
            if len(zones.mins) != index.nzones:
                raise ValueError(f"zone map column {col}: zone count mismatch")
            index.columns[int(col)] = zones
        return index


def _comparable_bounds(interval: ValueInterval) -> bool:
    """Can zone min/max reason about this interval's bounds?

    Requires at least one bound, and every bound a non-NaN int or float
    (bools excluded: they compare numerically but never reach here from
    SQL).  A NaN bound would make the keep test all-False — consistent
    with the mask, but declining is simpler to reason about.
    """
    if interval.is_unbounded():
        return False
    for bound in (interval.lo, interval.hi):
        if bound is None:
            continue
        if isinstance(bound, bool) or not isinstance(bound, (int, float)):
            return False
        if isinstance(bound, float) and math.isnan(bound):
            return False
    return True
