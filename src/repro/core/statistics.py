"""Engine statistics: the quantitative story behind every figure.

Every query records a :class:`QueryStats` with the raw-file work it caused
(bytes read, rows/fields tokenized, values parsed), the adaptive-store
traffic (rows newly loaded, rows served from cache) and wall-clock split
into load vs execute.  The bench harness reads these to print the paper's
series, and the robustness monitor (section 5.5) reads them to detect
pathological workloads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.flatfile.parser import ParseStats
from repro.flatfile.tokenizer import TokenizerStats


@dataclass
class QueryStats:
    """Everything one query cost."""

    sql: str = ""
    policy: str = ""
    tables: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    load_s: float = 0.0
    execute_s: float = 0.0
    tokenizer: TokenizerStats = field(default_factory=TokenizerStats)
    parse: ParseStats = field(default_factory=ParseStats)
    file_bytes_read: int = 0
    file_reads: int = 0
    rows_loaded: int = 0
    served_from_store: bool = False
    went_to_file: bool = False
    split_files_written: int = 0
    result_rows: int = 0
    #: Row-range partitions scanned by the parallel loader (0 = serial).
    parallel_partitions: int = 0

    def summary(self) -> str:
        src = "store" if self.served_from_store else "file"
        return (
            f"{self.elapsed_s * 1e3:8.2f} ms  src={src:5s} "
            f"bytes={self.file_bytes_read:>10d} tok={self.tokenizer.fields_tokenized:>9d} "
            f"parse={self.parse.values_parsed:>9d} loaded={self.rows_loaded:>8d}"
        )


@dataclass
class EngineStatistics:
    """Accumulated per-engine history."""

    queries: list[QueryStats] = field(default_factory=list)

    def record(self, q: QueryStats) -> None:
        self.queries.append(q)

    @property
    def total_file_bytes(self) -> int:
        return sum(q.file_bytes_read for q in self.queries)

    @property
    def total_values_parsed(self) -> int:
        return sum(q.parse.values_parsed for q in self.queries)

    @property
    def total_rows_loaded(self) -> int:
        return sum(q.rows_loaded for q in self.queries)

    @property
    def queries_from_store(self) -> int:
        return sum(1 for q in self.queries if q.served_from_store)

    @property
    def queries_from_file(self) -> int:
        return sum(1 for q in self.queries if q.went_to_file)

    def last(self) -> QueryStats:
        if not self.queries:
            raise IndexError("no queries recorded yet")
        return self.queries[-1]


class Stopwatch:
    """Tiny perf_counter helper used by the engine's load/execute split."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def lap(self) -> float:
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed
