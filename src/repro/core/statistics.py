"""Engine statistics: the quantitative story behind every figure.

Every query records a :class:`QueryStats` with the raw-file work it caused
(bytes read, rows/fields tokenized, values parsed), the adaptive-store
traffic (rows newly loaded, rows served from cache) and wall-clock split
into load vs execute.  The bench harness reads these to print the paper's
series, and the robustness monitor (section 5.5) reads them to detect
pathological workloads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.flatfile.parser import ParseStats
from repro.flatfile.tokenizer import TokenizerStats


@dataclass
class QueryStats:
    """Everything one query cost."""

    sql: str = ""
    policy: str = ""
    tables: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    load_s: float = 0.0
    execute_s: float = 0.0
    tokenizer: TokenizerStats = field(default_factory=TokenizerStats)
    parse: ParseStats = field(default_factory=ParseStats)
    file_bytes_read: int = 0
    file_reads: int = 0
    rows_loaded: int = 0
    served_from_store: bool = False
    went_to_file: bool = False
    split_files_written: int = 0
    result_rows: int = 0
    #: Row-range partitions scanned by the parallel loader (0 = serial).
    parallel_partitions: int = 0
    #: Served straight from the query-result cache (no load, no execute).
    result_cache_hit: bool = False
    #: At least one of this query's tables was served from fragments
    #: loaded by a concurrent query's shared scan this query waited on.
    shared_scan_reused: bool = False
    #: Zones (fixed row ranges) the selective path skipped because their
    #: min/max statistics proved no row could match a range predicate.
    zone_map_skips: int = 0
    #: Crack operations (piece partitions) this query's warm serves
    #: caused in cracked predicate columns.
    cracks: int = 0
    #: At least one table view was answered by a cracker index instead
    #: of full-column masks.
    served_by_cracker: bool = False
    #: Raw-file reads this query re-attempted after a transient I/O
    #: error (bounded retry-with-backoff in the flat-file layer).
    io_retries: int = 0

    def summary(self) -> str:
        src = "store" if self.served_from_store else "file"
        return (
            f"{self.elapsed_s * 1e3:8.2f} ms  src={src:5s} "
            f"bytes={self.file_bytes_read:>10d} tok={self.tokenizer.fields_tokenized:>9d} "
            f"parse={self.parse.values_parsed:>9d} loaded={self.rows_loaded:>8d}"
        )

    def snapshot(self) -> dict:
        """JSON-safe flat view of what this query cost (wire/CLI form)."""
        return {
            "sql": self.sql,
            "policy": self.policy,
            "tables": list(self.tables),
            "elapsed_s": self.elapsed_s,
            "load_s": self.load_s,
            "execute_s": self.execute_s,
            "file_bytes_read": self.file_bytes_read,
            "file_reads": self.file_reads,
            "rows_loaded": self.rows_loaded,
            "values_parsed": self.parse.values_parsed,
            "fields_tokenized": self.tokenizer.fields_tokenized,
            "served_from_store": self.served_from_store,
            "went_to_file": self.went_to_file,
            "result_rows": self.result_rows,
            "parallel_partitions": self.parallel_partitions,
            "result_cache_hit": self.result_cache_hit,
            "shared_scan_reused": self.shared_scan_reused,
            "zone_map_skips": self.zone_map_skips,
            "cracks": self.cracks,
            "served_by_cracker": self.served_by_cracker,
            "io_retries": self.io_retries,
        }


@dataclass
class ConcurrencyCounters:
    """Serving-layer counters for the concurrent engine.

    Every table view a query obtains is counted exactly once as a warm
    hit, a shared-scan reuse or a shared-scan load, so::

        warm_hits + shared_scan_reuses + shared_scan_loads
            == table views provided

    and, with the result cache enabled::

        result_cache_hits + result_cache_misses == queries run

    (a cache hit skips view provision entirely).  The per-signature load
    ledger (:attr:`loads_by_signature`) counts raw-file loads by
    ``(table, column-set, generation)``: shared-scan batching guarantees
    at most one load per cold (table, column-set) generation for the
    store-keeping policies, and the concurrency tests assert exactly
    that.
    """

    #: Query served straight from the result cache.
    result_cache_hits: int = 0
    #: Result-cache probe missed (query then ran normally).
    result_cache_misses: int = 0
    #: Table view served from resident fragments without waiting.
    warm_hits: int = 0
    #: Table view served warm after waiting on another thread's load.
    shared_scan_reuses: int = 0
    #: Table view whose provision ran a raw-file load (flight leader).
    shared_scan_loads: int = 0
    #: Entries written to the persistent store (off the query path).
    persist_writes: int = 0
    #: Cold tables restored from the persistent store instead of scanned.
    restart_warm_hits: int = 0
    #: Persisted entries deleted because their fingerprint mismatched the
    #: live file (staleness) or the in-memory table was invalidated.
    store_invalidations: int = 0
    #: Stale fingerprints recognized as pure tail-appends whose learned
    #: state was extended in place instead of wiped.
    append_extensions: int = 0
    #: Zones skipped by zone-map pruning across all queries.
    zone_map_skips: int = 0
    #: Crack operations performed by warm serves across all queries.
    cracks: int = 0
    #: Raw-file reads re-attempted after a transient I/O error.
    io_retries: int = 0
    #: Persistent-store writes or restores that failed (the engine
    #: degraded to warm-only serving instead of failing the query).
    persist_failures: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "result_cache_hits": self.result_cache_hits,
            "result_cache_misses": self.result_cache_misses,
            "warm_hits": self.warm_hits,
            "shared_scan_reuses": self.shared_scan_reuses,
            "shared_scan_loads": self.shared_scan_loads,
            "persist_writes": self.persist_writes,
            "restart_warm_hits": self.restart_warm_hits,
            "store_invalidations": self.store_invalidations,
            "zone_map_skips": self.zone_map_skips,
            "cracks": self.cracks,
            "io_retries": self.io_retries,
            "persist_failures": self.persist_failures,
        }


@dataclass
class EngineStatistics:
    """Accumulated per-engine history."""

    queries: list[QueryStats] = field(default_factory=list)
    counters: ConcurrencyCounters = field(default_factory=ConcurrencyCounters)
    #: (table key, frozenset of columns, generation) -> raw-file loads.
    loads_by_signature: dict[tuple, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, q: QueryStats) -> None:
        with self._lock:
            self.queries.append(q)

    # ------------------------------------------------- concurrency counters

    def count(self, counter: str, n: int = 1) -> None:
        """Atomically bump one :class:`ConcurrencyCounters` field."""
        with self._lock:
            setattr(self.counters, counter, getattr(self.counters, counter) + n)

    #: Ledger cap: a long-running serving engine bumps a table's
    #: generation on every file edit, so unpruned (table, columns,
    #: generation) keys would grow forever.  FIFO-drop the oldest past
    #: this bound — far above what any test or debugging session reads.
    _MAX_LOAD_SIGNATURES = 4096

    def note_load(
        self, table_key: str, columns: frozenset[str], generation: int
    ) -> None:
        """Record one raw-file load for a (table, column-set) generation."""
        signature = (table_key, columns, generation)
        with self._lock:
            self.counters.shared_scan_loads += 1
            self.loads_by_signature[signature] = (
                self.loads_by_signature.get(signature, 0) + 1
            )
            while len(self.loads_by_signature) > self._MAX_LOAD_SIGNATURES:
                oldest = next(iter(self.loads_by_signature))
                del self.loads_by_signature[oldest]

    def max_loads_per_signature(self) -> int:
        """The worst duplicate-load count across all generations (0 = none)."""
        with self._lock:
            return max(self.loads_by_signature.values(), default=0)

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """Thread-safe, JSON-safe point-in-time copy of the statistics.

        This is the **only** sanctioned way for serving layers (the HTTP
        ``/stats`` endpoint, the CLI ``--stats`` printer) to read engine
        statistics: one lock acquisition yields a coherent copy, and the
        dict is plain data — no live counter objects escape.
        """
        with self._lock:
            queries = list(self.queries)
            counters = self.counters.snapshot()
            max_loads = max(self.loads_by_signature.values(), default=0)
        return {
            "queries": len(queries),
            "total_file_bytes": sum(q.file_bytes_read for q in queries),
            "total_values_parsed": sum(q.parse.values_parsed for q in queries),
            "total_rows_loaded": sum(q.rows_loaded for q in queries),
            "queries_from_store": sum(1 for q in queries if q.served_from_store),
            "queries_from_file": sum(1 for q in queries if q.went_to_file),
            "max_loads_per_signature": max_loads,
            "counters": counters,
            "last_query": queries[-1].snapshot() if queries else None,
        }

    @property
    def total_file_bytes(self) -> int:
        return sum(q.file_bytes_read for q in self.queries)

    @property
    def total_values_parsed(self) -> int:
        return sum(q.parse.values_parsed for q in self.queries)

    @property
    def total_rows_loaded(self) -> int:
        return sum(q.rows_loaded for q in self.queries)

    @property
    def queries_from_store(self) -> int:
        return sum(1 for q in self.queries if q.served_from_store)

    @property
    def queries_from_file(self) -> int:
        return sum(1 for q in self.queries if q.went_to_file)

    def last(self) -> QueryStats:
        if not self.queries:
            raise IndexError("no queries recorded yet")
        return self.queries[-1]


class Stopwatch:
    """Tiny perf_counter helper used by the engine's load/execute split."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def lap(self) -> float:
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed
