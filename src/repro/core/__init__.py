"""The paper's contribution: adaptive, incremental, query-driven loading.

``repro.core`` wires the substrates together: the
:class:`~repro.core.engine.NoDBEngine` facade accepts attached flat files
and SQL, and a pluggable :class:`~repro.core.policies.LoadingPolicy`
decides — per query — what to read from the raw files, what to keep, and
what to serve from the adaptive store.
"""

from repro.core.autotuner import AutoTuningEngine, PolicySwitch
from repro.core.engine import NoDBEngine
from repro.core.monitor import PolicyAdvice, RobustnessMonitor
from repro.core.policies import make_policy
from repro.core.statistics import EngineStatistics, QueryStats

__all__ = [
    "AutoTuningEngine",
    "EngineStatistics",
    "NoDBEngine",
    "PolicyAdvice",
    "PolicySwitch",
    "QueryStats",
    "RobustnessMonitor",
    "make_policy",
]
