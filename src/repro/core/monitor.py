"""Robust-performance monitor (paper section 5.5).

"The challenge, for providing a robust performance relates to a continuous
process to monitor the system performance and the workload trends such as
we can continuously adjust critical decisions."

The monitor watches the per-query statistics stream and raises *advice*
when the running policy is pathological for the observed workload:

* a stateless policy (``external``, ``partial_v1``) paying full-file trips
  for a workload that keeps re-touching the same columns — the repeated
  work the adaptive store exists to amortize;
* ``partial_v2`` whose table of contents almost never covers incoming
  queries (workload keeps shifting) — column or split loading would
  amortize better;
* any caching policy thrashing against the memory budget (fragments
  evicted before they are ever reused) — the worst case sketched in 5.5
  where "all the effort of incremental loading is wasted".

Advice is returned, never enforced: switching policies mid-flight is the
operator's (or a future auto-tuner's) decision.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.statistics import QueryStats


@dataclass(frozen=True)
class PolicyAdvice:
    """A recommendation to switch loading policies."""

    switch_to: str
    reason: str


@dataclass
class CrackingAdvisor:
    """Counts warm range scans per (table, column) to justify cracking.

    Building a cracker copies the whole column; the copy only pays off
    when the same predicate column keeps coming back.  The warm path
    asks this advisor on every crackable range scan and cracks once the
    count reaches ``EngineConfig.crack_after``.  Thread-safe: warm
    serves run concurrently under the shared read lock.
    """

    counts: dict[tuple[str, str], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def note_range_scan(self, table_key: str, column: str) -> int:
        """Record one warm range scan; returns the running count."""
        key = (table_key, column.lower())
        with self._lock:
            self.counts[key] = self.counts.get(key, 0) + 1
            return self.counts[key]

    def forget_table(self, table_key: str) -> None:
        """Reset a table's counts (its crackers were just invalidated)."""
        with self._lock:
            for key in [k for k in self.counts if k[0] == table_key]:
                del self.counts[key]


@dataclass
class RobustnessMonitor:
    """Sliding-window workload/performance watcher."""

    policy: str
    window: int = 8
    evictions_seen: int = 0
    history: list[QueryStats] = field(default_factory=list)
    #: Decides when repeated range predicates justify cracking a column.
    cracking: CrackingAdvisor = field(default_factory=CrackingAdvisor)

    def observe(self, qstats: QueryStats, evictions_total: int = 0) -> None:
        self.history.append(qstats)
        self.evictions_seen = evictions_total

    # -------------------------------------------------------------- advice

    def advise(self) -> PolicyAdvice | None:
        recent = self.history[-self.window :]
        if len(recent) < self.window:
            return None
        file_trips = sum(1 for q in recent if q.went_to_file)
        store_hits = sum(1 for q in recent if q.served_from_store)

        if self.policy in ("external", "partial_v1") and file_trips == len(recent):
            repeated = self._repeated_column_traffic(recent)
            if repeated:
                return PolicyAdvice(
                    switch_to="splitfiles",
                    reason=(
                        f"{file_trips}/{len(recent)} recent queries re-read the flat "
                        "file for columns that were needed before; a caching policy "
                        "would amortize the tokenize/parse cost"
                    ),
                )
        if self.policy == "partial_v2" and store_hits == 0 and file_trips == len(recent):
            return PolicyAdvice(
                switch_to="column_loads",
                reason=(
                    "the partial-load table of contents never covered a query in "
                    f"the last {len(recent)}; the workload shifts too fast for "
                    "value-range reuse, so loading whole columns amortizes better"
                ),
            )
        if self.policy not in ("external", "partial_v1"):
            loads = sum(q.rows_loaded for q in recent)
            if self.evictions_seen >= len(recent) and loads > 0 and store_hits == 0:
                return PolicyAdvice(
                    switch_to="partial_v1",
                    reason=(
                        "loaded fragments are evicted before any reuse (memory "
                        "thrashing); a throw-away policy avoids the wasted stores"
                    ),
                )
        return None

    @staticmethod
    def _repeated_column_traffic(recent: list[QueryStats]) -> bool:
        """Did recent queries parse substantially overlapping work?

        Stateless policies do not track columns, so this uses parse volume
        as the proxy: near-identical parse counts across the window mean
        the same shape of work is being redone.
        """
        volumes = [q.parse.values_parsed for q in recent if q.went_to_file]
        if not volumes:
            return False
        lo, hi = min(volumes), max(volumes)
        return lo > 0 and hi <= lo * 2
