"""Adaptive load operators (paper section 3).

These are the operators the paper plugs into MonetDB query plans; here they
are functions invoked by the loading policies before execution.  Each
operator makes one pass over a raw file (or split files) and returns typed
column arrays plus the work counters the statistics layer aggregates:

* :func:`full_load_pass` — the classic loader: tokenize and parse every
  column of every row (the MonetDB baseline of every figure).
* :func:`column_load_pass` — load a *subset* of columns in one go
  ("one adaptive load operator to bring in one go all missing columns").
* :func:`partial_load_pass` — load only rows qualifying pushed-down
  predicates (Partial Loads; section 3.2's early row abandonment).
* :func:`external_pass` — the MySQL-CSV-engine behaviour: tokenize whole
  rows, parse what the query needs, remember nothing.

All passes discover the table's row count as a side effect, feed the
positional map when enabled, and honour the tokenizer ablation toggles in
:class:`~repro.config.EngineConfig`.

Three routes exist through :func:`run_pass`:

* the **full-scan route** reads the whole file and tokenizes selectively
  (the behaviour of every paper figure);
* the **selective-read route** (section 4.1.5 taken to its conclusion)
  activates when the positional map already knows the byte range of every
  field the pass needs: only those ranges are read from the file, in
  coalesced window reads, and the fields are gathered vectorized — a
  repeat query touches strictly less of the file than its first run;
* the **partitioned parallel route** (:mod:`repro.core.partitions`)
  activates for cold scans of large files when ``parallel_workers > 1``:
  the file is split into newline-aligned row-range partitions scanned by
  a process pool, and the per-partition results are merged back into the
  exact output the serial full-scan route would have produced.

Typed parsing is widening: a value that does not fit the inferred column
type (e.g. a float deep in a column sampled as int) widens the column —
int64 → float64 → str — and retries, instead of failing the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import EngineConfig
from repro.errors import FlatFileError
from repro.flatfile.files import coalesce_ranges
from repro.flatfile.parser import ParseStats, parse_fields, parse_single
from repro.flatfile.positions import PositionalMap
from repro.flatfile.schema import WIDENS_TO, ColumnSchema, DataType, TableSchema
from repro.flatfile.tokenizer import (
    RawPredicate,
    TokenizerStats,
    gather_fields,
    tokenize_bytes,
)
from repro.core.zonemaps import ZoneMapIndex
from repro.ranges import Condition, ValueInterval
from repro.storage.catalog import TableEntry


@dataclass
class PassResult:
    """Typed output of one adaptive-loading pass over a raw file."""

    nrows: int  # total data rows in the file
    columns: dict[str, np.ndarray]  # column name -> parsed values
    row_ids: np.ndarray  # global row ids the values correspond to
    tokenizer: TokenizerStats = field(default_factory=TokenizerStats)
    parse: ParseStats = field(default_factory=ParseStats)
    partitions: int = 0  # row-range partitions scanned in parallel (0 = serial)
    zone_map_skips: int = 0  # zones skipped by zone-map pruning

    @property
    def is_full_rows(self) -> bool:
        return len(self.row_ids) == self.nrows


#: Widening ladder for values the inferred type cannot represent (shared
#: with the pushdown predicates and the parallel partition workers).
_WIDER: dict[DataType, DataType] = WIDENS_TO


def _widen_column(entry: TableEntry, idx: int, to_dtype: DataType) -> None:
    """Widen column ``idx`` of ``entry`` to ``to_dtype``, store included.

    The adaptive store's copy of the column is converted in place when the
    widening is numeric (int64 → float64) and dropped otherwise — the
    paper's lifetime principle makes dropping always legal, at worst one
    reload away.
    """
    schema = entry.schema
    current = schema.columns[idx]
    if current.dtype is to_dtype:
        return
    schema.columns[idx] = ColumnSchema(current.name, to_dtype)
    if entry.zone_maps is not None:
        # Min/max learned under the narrower type no longer describe the
        # values predicates will compare against; relearn on a later pass.
        entry.zone_maps.drop_column(idx)
    if entry.table is not None:
        pc = entry.table.columns.get(current.name.lower())
        if pc is not None:
            pc.widen(to_dtype)


def parse_column_with_widening(
    entry: TableEntry, idx: int, raw, parse_stats: ParseStats
) -> np.ndarray:
    """Parse raw fields under the schema type, widening on failure.

    A valid CSV whose sampled type was too narrow (a float or a string
    past the schema-inference sample window) must not make the column
    unqueryable: on parse failure the column's type is widened one step
    (int64 → float64 → str) and the parse retried.  The retry re-counts
    the converted values in ``parse_stats`` — re-parsing is real work.
    """
    while True:
        dtype = entry.schema.columns[idx].dtype
        try:
            return parse_fields(raw, dtype, parse_stats)
        except FlatFileError:
            wider = _WIDER.get(dtype)
            if wider is None:
                raise
            _widen_column(entry, idx, wider)


def make_widening_predicate(
    column_name: str,
    interval,
    get_dtype,
    widen,
    parse_stats: ParseStats,
) -> RawPredicate:
    """Build one raw-text pushdown predicate over the widening ladder.

    The single source of truth for predicate semantics, shared by the
    serial loader and the parallel partition workers (which must stay
    behaviourally identical): each evaluation parses the field under the
    current type (counted in ``parse_stats`` — conversions are real
    work), a value the type cannot represent calls ``widen`` with the
    next ladder step and retries (terminates: str parsing cannot fail),
    and failures surface as :class:`~repro.errors.FlatFileError` — a
    typed error in the library's one family, never a raw ``ValueError``
    or ``TypeError``.  ``get_dtype``/``widen`` abstract where the column
    type lives: the real schema serially, partition-local state in a
    worker.
    """

    def parse_counted(text: str) -> object:
        while True:
            dtype = get_dtype()
            parse_stats.values_parsed += 1
            try:
                return parse_single(text, dtype)
            except ValueError as exc:
                wider = _WIDER.get(dtype)
                if wider is None:
                    raise FlatFileError(
                        f"cannot parse field {text!r} of column "
                        f"{column_name!r} as {dtype.value} "
                        "for a pushdown predicate"
                    ) from exc
                widen(wider)

    raw_check = interval.raw_predicate(parse_counted)

    def checked(text: str) -> bool:
        try:
            return raw_check(text)
        except TypeError as exc:
            # e.g. a str-widened field compared against numeric bounds.
            raise FlatFileError(
                f"cannot compare field {text!r} of column "
                f"{column_name!r} for a pushdown predicate"
            ) from exc

    return checked


def _pushdown_predicates(
    entry: TableEntry,
    condition: Condition | None,
    config: EngineConfig,
    parse_stats: ParseStats,
) -> dict[int, RawPredicate]:
    """Build raw-text predicates for the tokenizer from a range condition.

    See :func:`make_widening_predicate` for the per-predicate semantics;
    here each predicate reads and widens the *real* schema in place.
    """
    if condition is None or not config.predicate_pushdown:
        return {}
    schema = entry.ensure_schema()
    predicates = {}
    for col, interval in condition.items:
        idx = schema.index_of(col)
        predicates[idx] = make_widening_predicate(
            schema.columns[idx].name,
            interval,
            get_dtype=lambda _idx=idx: schema.columns[_idx].dtype,
            widen=lambda wider, _idx=idx: _widen_column(entry, _idx, wider),
            parse_stats=parse_stats,
        )
    return predicates


def _needed_indices(schema: TableSchema, names: list[str]) -> list[int]:
    return sorted(schema.index_of(n) for n in names)


def run_pass(
    entry: TableEntry,
    needed: list[str],
    condition: Condition | None,
    config: EngineConfig,
    *,
    parse_all_rows: bool,
    tokenize_everything: bool = False,
) -> PassResult:
    """The shared tokenize-and-parse pass under all file-reading operators.

    Parameters
    ----------
    parse_all_rows:
        When True, predicates are *not* pushed into tokenization and every
        row's needed fields are parsed (column loads / full load).  When
        False, pushdown predicates filter rows during tokenization and
        only qualifying rows are parsed (partial loads).
    tokenize_everything:
        Tokenize all columns of every row regardless of need (the external
        -table behaviour, and the early-abort ablation).
    """
    from repro.core.partitions import parallel_pass, partitions_for

    schema = entry.ensure_schema()
    skip = 1 if entry.has_header else 0
    needed_idx = _needed_indices(schema, needed) if needed else [0]
    parse_stats = ParseStats()
    pushdown = (
        not tokenize_everything
        and not parse_all_rows
        and condition is not None
        and config.predicate_pushdown
    )
    if tokenize_everything:
        tokenize_idx = list(range(len(schema)))
        early_abort = False
    else:
        tokenize_idx = needed_idx
        early_abort = config.tokenizer_early_abort
    pushdown_items = list(condition.items) if pushdown else []
    pred_idx = [schema.index_of(c) for c, _ in pushdown_items]
    pmap = entry.positional_map if config.use_positional_map else None
    want_cols = sorted(set(tokenize_idx) | set(pred_idx))
    if (
        not tokenize_everything
        and config.selective_reads
        and pmap is not None
        and _selective_worthwhile(entry, pmap, want_cols, config)
    ):
        predicates = _pushdown_predicates(
            entry, condition if pushdown else None, config, parse_stats
        )
        intervals = {schema.index_of(c): iv for c, iv in pushdown_items}
        result = _selective_pass(
            entry, schema, needed, predicates, intervals, pmap, config, parse_stats
        )
        _learn_zone_maps(entry, schema, result, config)
        return result
    pindex = partitions_for(entry, config)
    if pindex is not None:
        result = parallel_pass(
            entry,
            schema,
            needed,
            pushdown_items,
            config,
            pindex,
            tokenize_cols=want_cols,
            early_abort=early_abort,
        )
        if result is not None:  # None: pool failed to start -> serial
            _learn_zone_maps(entry, schema, result, config)
            return result
    predicates = _pushdown_predicates(
        entry, condition if pushdown else None, config, parse_stats
    )
    data = entry.file.read_all_bytes()
    result = tokenize_bytes(
        data,
        entry.file.adapter,
        ncols=len(schema),
        needed=want_cols,
        early_abort=early_abort,
        predicates=predicates,
        positional_map=pmap,
        learn=pmap is not None,
        skip_rows=skip,
        vectorized=config.vectorized_tokenizer,
    )
    nrows = result.stats.rows_scanned
    columns: dict[str, np.ndarray] = {}
    for name in needed:
        idx = schema.index_of(name)
        raw = result.fields[idx]
        columns[schema.columns[idx].name] = parse_column_with_widening(
            entry, idx, raw, parse_stats
        )
    out = PassResult(
        nrows=nrows,
        columns=columns,
        row_ids=result.row_ids,
        tokenizer=result.stats,
        parse=parse_stats,
    )
    _learn_zone_maps(entry, schema, out, config)
    return out


# ---------------------------------------------------------------------------
# selective-read fast path
# ---------------------------------------------------------------------------


def _selective_worthwhile(
    entry: TableEntry,
    pmap: PositionalMap,
    cols: list[int],
    config: EngineConfig,
) -> bool:
    """Can — and should — this pass skip the full scan?

    *Can*: the map knows the row count, the file is single-byte text (so
    character offsets are byte offsets), and every column the pass will
    touch is a known byte slice.  *Should*: the coalesced ranges must save
    a meaningful fraction of the file (at least 1/16th), otherwise one
    sequential ``read_all`` beats many window reads covering the same
    bytes.
    """
    if pmap.nrows is None or not pmap.sliceable:
        return False
    if not all(pmap.can_slice(c) for c in cols):
        return False
    starts = np.concatenate([pmap.slices_for(c)[0] for c in cols])
    ends = np.concatenate([pmap.slices_for(c)[1] for c in cols])
    win_starts, win_ends = coalesce_ranges(
        starts, ends, config.selective_read_max_gap
    )
    size = entry.file.size_bytes()
    return int((win_ends - win_starts).sum()) < size - (size >> 4)


def _gather_column(
    entry: TableEntry,
    pmap: PositionalMap,
    col: int,
    rows: np.ndarray,
    config: EngineConfig,
    stats: TokenizerStats,
) -> list[str]:
    """Read and extract one column's fields for the given rows only."""
    starts, ends = pmap.slices_for(col)
    starts = starts[rows]
    ends = ends[rows]
    windows = entry.file.read_windows(
        starts,
        ends,
        max_gap=config.selective_read_max_gap,
        workers=config.resolved_parallel_workers(),
    )
    stats.chars_scanned += windows.total_bytes
    stats.fields_tokenized += len(rows)
    raw = gather_fields(
        windows.buffer, windows.translate(starts), ends - starts
    )
    # Spans cover the *encoded* field text; non-identity dialects (quoted
    # CSV, TSV escapes, fixed-width padding) decode to the logical value.
    return entry.file.adapter.decode_many(raw)


def _selective_pass(
    entry: TableEntry,
    schema: TableSchema,
    needed: list[str],
    predicates: dict[int, RawPredicate],
    intervals: dict[int, ValueInterval],
    pmap: PositionalMap,
    config: EngineConfig,
    parse_stats: ParseStats,
) -> PassResult:
    """Positional-map-driven pass: touch only the bytes the query needs.

    Pushdown predicates keep their early-abandonment power in range form:
    each predicate column is gathered only for the rows still in play, so
    a failing early predicate spares all later columns' bytes for that row
    — the byte-range analogue of abandoning a row mid-tokenization.

    Zone maps sharpen this further: before any window read, rows in
    zones whose min/max statistics prove the range predicate cannot
    match are dropped from the candidate set, so their bytes are never
    requested at all.  Skipping is sound because zones only exist for
    columns whose every value parsed under the current schema type (a
    widening drops the column's zones), and the zone test uses the same
    comparison operators as the predicate itself.
    """
    nrows = int(pmap.nrows)
    stats = TokenizerStats()
    stats.rows_scanned = nrows
    candidates = np.arange(nrows, dtype=np.int64)
    zone_skips = 0
    zmi = entry.zone_maps if config.zone_maps else None
    if zmi is not None and zmi.nrows == nrows:
        for col, interval in intervals.items():
            keep = zmi.zone_keep_mask(col, interval)
            if keep is None or bool(keep.all()):
                continue
            before = len(candidates)
            candidates = candidates[keep[zmi.zone_of_rows(candidates)]]
            zone_skips += int(len(keep) - keep.sum())
            stats.rows_abandoned += before - len(candidates)
    gathered: dict[int, list[str]] = {}
    gathered_rows: dict[int, np.ndarray] = {}
    for col in sorted(predicates):
        values = _gather_column(entry, pmap, col, candidates, config, stats)
        gathered[col] = values
        gathered_rows[col] = candidates
        if config.zone_maps and len(values) == nrows:
            # The first predicate column is gathered for every row (no
            # zones narrowed it yet): learn its zones so the next warm
            # query can skip — the partial-loads analogue of learning
            # during cold scans.
            _learn_zones_from_text(entry, schema, col, values, config)
        pred = predicates[col]
        keep = np.fromiter(
            (pred(v) for v in values), dtype=bool, count=len(values)
        )
        stats.rows_abandoned += int(len(keep) - keep.sum())
        candidates = candidates[keep]

    needed_idx = sorted({schema.index_of(n) for n in needed})
    remaining = [c for c in needed_idx if c not in predicates]
    if remaining and len(candidates):
        all_starts = np.concatenate(
            [pmap.slices_for(c)[0][candidates] for c in remaining]
        )
        all_ends = np.concatenate(
            [pmap.slices_for(c)[1][candidates] for c in remaining]
        )
        windows = entry.file.read_windows(
            all_starts,
            all_ends,
            max_gap=config.selective_read_max_gap,
            workers=config.resolved_parallel_workers(),
        )
        stats.chars_scanned += windows.total_bytes
        for col in remaining:
            starts, ends = pmap.slices_for(col)
            starts = starts[candidates]
            ends = ends[candidates]
            gathered[col] = entry.file.adapter.decode_many(
                gather_fields(
                    windows.buffer, windows.translate(starts), ends - starts
                )
            )
            gathered_rows[col] = candidates
            stats.fields_tokenized += len(candidates)
    elif remaining:
        for col in remaining:
            gathered[col] = []
            gathered_rows[col] = candidates

    columns: dict[str, np.ndarray] = {}
    for name in needed:
        idx = schema.index_of(name)
        values = gathered[idx]
        rows = gathered_rows[idx]
        if len(rows) != len(candidates):
            # Gathered before later predicates narrowed the row set: keep
            # only the survivors (rows arrays are sorted by construction).
            sel = np.searchsorted(rows, candidates)
            values = [values[i] for i in sel.tolist()]
        columns[schema.columns[idx].name] = parse_column_with_widening(
            entry, idx, values, parse_stats
        )
    stats.rows_emitted = len(candidates)
    return PassResult(
        nrows=nrows,
        columns=columns,
        row_ids=candidates,
        tokenizer=stats,
        parse=parse_stats,
        zone_map_skips=zone_skips,
    )


# ---------------------------------------------------------------------------
# zone-map learning (the skipping by-product of passes that parse full rows)
# ---------------------------------------------------------------------------


def _zone_index(entry: TableEntry, nrows: int, config: EngineConfig) -> ZoneMapIndex:
    """The entry's zone-map index, created lazily (write lock held)."""
    zmi = entry.zone_maps
    if zmi is None or zmi.nrows != nrows:
        zmi = ZoneMapIndex(nrows=nrows, zone_rows=config.zone_map_rows)
        entry.zone_maps = zmi
    return zmi


def _learn_zone_maps(
    entry: TableEntry,
    schema: TableSchema,
    result: PassResult,
    config: EngineConfig,
) -> None:
    """Zone-map numeric columns a pass parsed for every row.

    The vectorized tokenizer already touched every value to produce the
    typed arrays, so the per-zone min/max/null-count reductions ride
    along nearly for free.  Only full-row results qualify (a predicate
    pass's surviving rows say nothing about the rows it abandoned), and
    all ``run_pass`` callers hold the table write lock — zone maps are
    mutated exactly like the positional map.
    """
    if not config.zone_maps or result.nrows <= 0 or not result.is_full_rows:
        return
    for name, values in result.columns.items():
        if values.dtype.kind not in "if":
            continue
        idx = schema.index_of(name)
        zmi = _zone_index(entry, result.nrows, config)
        if not zmi.has(idx):
            zmi.learn(idx, values)


def _learn_zones_from_text(
    entry: TableEntry,
    schema: TableSchema,
    col: int,
    texts: list[str],
    config: EngineConfig,
) -> None:
    """Zone-map a predicate column gathered for every row (text form).

    Parses under the current schema type with throwaway stats — this is
    index maintenance, not query-answer work.  Any parse failure
    declines silently; the predicate path itself handles widening.
    """
    if entry.zone_maps is not None and entry.zone_maps.has(col):
        return
    dtype = schema.columns[col].dtype
    if not dtype.is_numeric:
        return
    try:
        values = parse_fields(texts, dtype, ParseStats())
    except FlatFileError:
        return
    _zone_index(entry, len(texts), config).learn(col, values)


def full_load_pass(entry: TableEntry, config: EngineConfig) -> PassResult:
    """Load every column of every row (the up-front loading baseline)."""
    schema = entry.ensure_schema()
    return run_pass(
        entry,
        needed=schema.names,
        condition=None,
        config=config,
        parse_all_rows=True,
    )


def column_load_pass(
    entry: TableEntry, columns: list[str], config: EngineConfig
) -> PassResult:
    """Load the given columns completely, in one pass over the file."""
    return run_pass(
        entry,
        needed=columns,
        condition=None,
        config=config,
        parse_all_rows=True,
    )


def partial_load_pass(
    entry: TableEntry,
    columns: list[str],
    condition: Condition | None,
    config: EngineConfig,
) -> PassResult:
    """Load only rows qualifying the pushed-down range condition."""
    return run_pass(
        entry,
        needed=columns,
        condition=condition,
        config=config,
        parse_all_rows=False,
    )


def external_pass(
    entry: TableEntry, columns: list[str], config: EngineConfig
) -> PassResult:
    """The CSV-engine pass: tokenize whole rows, parse needed, keep nothing."""
    return run_pass(
        entry,
        needed=columns,
        condition=None,
        config=config,
        parse_all_rows=True,
        tokenize_everything=True,
    )
