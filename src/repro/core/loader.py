"""Adaptive load operators (paper section 3).

These are the operators the paper plugs into MonetDB query plans; here they
are functions invoked by the loading policies before execution.  Each
operator makes one pass over a raw file (or split files) and returns typed
column arrays plus the work counters the statistics layer aggregates:

* :func:`full_load_pass` — the classic loader: tokenize and parse every
  column of every row (the MonetDB baseline of every figure).
* :func:`column_load_pass` — load a *subset* of columns in one go
  ("one adaptive load operator to bring in one go all missing columns").
* :func:`partial_load_pass` — load only rows qualifying pushed-down
  predicates (Partial Loads; section 3.2's early row abandonment).
* :func:`external_pass` — the MySQL-CSV-engine behaviour: tokenize whole
  rows, parse what the query needs, remember nothing.

All passes discover the table's row count as a side effect, feed the
positional map when enabled, and honour the tokenizer ablation toggles in
:class:`~repro.config.EngineConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import EngineConfig
from repro.flatfile.parser import ParseStats, parse_fields, parse_single
from repro.flatfile.schema import TableSchema
from repro.flatfile.tokenizer import TokenizerStats, tokenize_columns
from repro.ranges import Condition
from repro.storage.catalog import TableEntry


@dataclass
class PassResult:
    """Typed output of one adaptive-loading pass over a raw file."""

    nrows: int  # total data rows in the file
    columns: dict[str, np.ndarray]  # column name -> parsed values
    row_ids: np.ndarray  # global row ids the values correspond to
    tokenizer: TokenizerStats = field(default_factory=TokenizerStats)
    parse: ParseStats = field(default_factory=ParseStats)

    @property
    def is_full_rows(self) -> bool:
        return len(self.row_ids) == self.nrows


def _pushdown_predicates(
    schema: TableSchema,
    condition: Condition | None,
    config: EngineConfig,
    parse_stats: ParseStats,
) -> dict[int, object]:
    """Build raw-text predicates for the tokenizer from a range condition.

    Each predicate parses its field to compare it, and that conversion is
    real work the loading operator performs, so it is counted in
    ``parse_stats`` like any other parse.
    """
    if condition is None or not config.predicate_pushdown:
        return {}
    predicates = {}
    for col, interval in condition.items:
        idx = schema.index_of(col)
        dtype = schema.columns[idx].dtype

        def parse_counted(text: str, _d=dtype) -> object:
            parse_stats.values_parsed += 1
            return parse_single(text, _d)

        predicates[idx] = interval.raw_predicate(parse_counted)
    return predicates


def _needed_indices(schema: TableSchema, names: list[str]) -> list[int]:
    return sorted(schema.index_of(n) for n in names)


def run_pass(
    entry: TableEntry,
    needed: list[str],
    condition: Condition | None,
    config: EngineConfig,
    *,
    parse_all_rows: bool,
    tokenize_everything: bool = False,
) -> PassResult:
    """The shared tokenize-and-parse pass under all file-reading operators.

    Parameters
    ----------
    parse_all_rows:
        When True, predicates are *not* pushed into tokenization and every
        row's needed fields are parsed (column loads / full load).  When
        False, pushdown predicates filter rows during tokenization and
        only qualifying rows are parsed (partial loads).
    tokenize_everything:
        Tokenize all columns of every row regardless of need (the external
        -table behaviour, and the early-abort ablation).
    """
    schema = entry.ensure_schema()
    skip = 1 if entry.has_header else 0
    text = entry.file.read_all()
    needed_idx = _needed_indices(schema, needed) if needed else [0]
    parse_stats = ParseStats()
    if tokenize_everything:
        tokenize_idx = list(range(len(schema)))
        predicates = {}
        early_abort = False
    else:
        tokenize_idx = needed_idx
        predicates = (
            {}
            if parse_all_rows
            else _pushdown_predicates(schema, condition, config, parse_stats)
        )
        early_abort = config.tokenizer_early_abort
    pmap = entry.positional_map if config.use_positional_map else None
    result = tokenize_columns(
        text,
        ncols=len(schema),
        needed=sorted(set(tokenize_idx) | set(predicates)),
        delimiter=entry.file.delimiter,
        early_abort=early_abort,
        predicates=predicates,
        positional_map=pmap,
        learn=pmap is not None,
        skip_rows=skip,
    )
    nrows = result.stats.rows_scanned
    columns: dict[str, np.ndarray] = {}
    for name in needed:
        idx = schema.index_of(name)
        raw = result.fields[idx]
        columns[schema.columns[idx].name] = parse_fields(
            raw, schema.columns[idx].dtype, parse_stats
        )
    return PassResult(
        nrows=nrows,
        columns=columns,
        row_ids=result.row_ids,
        tokenizer=result.stats,
        parse=parse_stats,
    )


def full_load_pass(entry: TableEntry, config: EngineConfig) -> PassResult:
    """Load every column of every row (the up-front loading baseline)."""
    schema = entry.ensure_schema()
    return run_pass(
        entry,
        needed=schema.names,
        condition=None,
        config=config,
        parse_all_rows=True,
    )


def column_load_pass(
    entry: TableEntry, columns: list[str], config: EngineConfig
) -> PassResult:
    """Load the given columns completely, in one pass over the file."""
    return run_pass(
        entry,
        needed=columns,
        condition=None,
        config=config,
        parse_all_rows=True,
    )


def partial_load_pass(
    entry: TableEntry,
    columns: list[str],
    condition: Condition | None,
    config: EngineConfig,
) -> PassResult:
    """Load only rows qualifying the pushed-down range condition."""
    return run_pass(
        entry,
        needed=columns,
        condition=condition,
        config=config,
        parse_all_rows=False,
    )


def external_pass(
    entry: TableEntry, columns: list[str], config: EngineConfig
) -> PassResult:
    """The CSV-engine pass: tokenize whole rows, parse needed, keep nothing."""
    return run_pass(
        entry,
        needed=columns,
        condition=None,
        config=config,
        parse_all_rows=True,
        tokenize_everything=True,
    )
