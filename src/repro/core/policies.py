"""Loading policies: the strategies of sections 3-4 behind one interface.

A :class:`LoadingPolicy` receives one query's requirements for one table —
needed columns and the conjunctive range condition — and returns a
:class:`TableView` of column vectors the executor can run on.  How much of
the raw file gets touched, what is kept in the adaptive store, and what a
repeat query will cost are entirely the policy's business:

========================  ====================================================
``fullload``              classic DBMS: first touch loads everything
``external``              MySQL CSV engine: re-parse whole rows every query
``column_loads``          load whole missing columns on demand (section 3.2)
``partial_v1``            pushdown loading, discard after query (section 3.2)
``partial_v2``            pushdown loading, keep + reuse fragments (section 4)
``splitfiles``            file cracking: split-as-you-load (section 4)
========================  ====================================================

The **universe convention**: a view presents either all table rows or only
rows qualifying the query's recognized range condition.  Both are sound
because the executor re-applies the full WHERE clause; conjunctive range
predicates are idempotent, and residual predicates always run after the
view is built.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.config import EngineConfig
from repro.core.loader import (
    PassResult,
    column_load_pass,
    external_pass,
    full_load_pass,
    parse_column_with_widening,
    partial_load_pass,
)
from repro.core.monitor import CrackingAdvisor
from repro.core.splitfile import SplitFileCatalog
from repro.core.statistics import QueryStats
from repro.cracking.cracker import CrackerColumn
from repro.errors import ExecutionError
from repro.ranges import Condition, ValueInterval
from repro.storage.binarystore import BinaryStore
from repro.storage.catalog import TableEntry
from repro.storage.memory import MemoryManager
from repro.storage.partial import CoverageCertificate
from repro.storage.table import Table


@dataclass
class LoadContext:
    """Everything a policy needs to satisfy one query on one table."""

    entry: TableEntry
    needed: list[str]
    condition: Condition
    config: EngineConfig
    memory: MemoryManager
    qstats: QueryStats
    split: SplitFileCatalog | None = None
    binary: BinaryStore | None = None
    #: The engine monitor's cracking advisor (None in bare-policy tests:
    #: the warm path then never cracks).
    advisor: CrackingAdvisor | None = None
    #: Memory-manager pins this context holds; the engine releases them
    #: (one :meth:`MemoryManager.unpin` each) once the view is built.
    pinned_keys: list[tuple[str, str]] = field(default_factory=list)

    def pin(self, key: tuple[str, str]) -> bool:
        """Pin a fragment for the duration of this context; record it."""
        if self.memory.pin(key):
            self.pinned_keys.append(key)
            return True
        return False


@dataclass
class TableView:
    """Column vectors presented to the executor for one table."""

    nrows: int
    arrays: dict[str, np.ndarray]
    served_from_store: bool = False
    went_to_file: bool = False

    def get_column(self, name: str) -> np.ndarray:
        try:
            return self.arrays[name.lower()]
        except KeyError:
            raise ExecutionError(
                f"column {name!r} was not provided by the loading policy"
            ) from None


class LoadingPolicy:
    """Base class; subclasses implement :meth:`provide`."""

    name = "abstract"

    def provide(self, ctx: LoadContext) -> TableView:  # pragma: no cover
        raise NotImplementedError

    def try_serve_warm(self, ctx: LoadContext) -> TableView | None:
        """Serve the query purely from resident fragments, or decline.

        Called by the engine under the table's shared *read* lock, so it
        must not mutate the entry, the store or the positional map — the
        only side effects allowed are memory-manager pins/touches.
        Returning ``None`` sends the caller to the exclusive load path.
        Stateless policies (``external``, ``partial_v1``) keep nothing
        and therefore never serve warm.
        """
        return None

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _warm_full_columns(ctx: LoadContext) -> TableView | None:
        """Read-only store probe: every needed column fully resident.

        Pins each fragment *before* inspecting it so a concurrent
        eviction (which runs under the memory manager's lock, not the
        table lock) cannot drop a column between the check and the
        snapshot.  Any miss declines — the load path re-checks under the
        write lock.
        """
        table = ctx.entry.table
        if table is None:
            return None
        arrays: dict[str, np.ndarray] = {}
        for name in ctx.needed:
            pc = table.columns.get(name.lower())
            if pc is None:
                return None
            key = (table.name, pc.name)
            if not ctx.pin(key):
                return None
            if not pc.is_fully_loaded or pc.values is None:
                return None
            ctx.memory.touch(key)
            arrays[name.lower()] = pc.values
        return TableView(
            nrows=table.nrows,
            arrays=arrays,
            served_from_store=True,
            went_to_file=False,
        )

    @staticmethod
    def _warm_cracked(ctx: LoadContext) -> TableView | None:
        """Serve a range query through a cracked column, or decline.

        The warm-path strategy above plain masks: once the advisor has
        seen ``config.crack_after`` warm range scans against a fully
        resident numeric column, a :class:`CrackerColumn` copy of it is
        built, and range selections are answered by cracker-index binary
        search plus at most two edge-piece partitions — O(result) work
        instead of O(rows) masks.

        Runs under the shared *read* lock like every warm serve.  The
        cracker owns a copy of the base column and is only mutated under
        ``entry.cracker_lock``, so the read-lock contract (no entry,
        store or posmap mutation) holds.  The returned view presents
        exactly the qualifying rows in file order; the executor
        re-applies the WHERE conjuncts, which is then a no-op.
        """
        cfg = ctx.config
        if not cfg.cracking or ctx.advisor is None or ctx.condition.is_trivial():
            return None
        entry = ctx.entry
        table = entry.table
        if table is None:
            return None
        # Pin-then-check every column the query touches (needed plus all
        # condition columns), exactly like _warm_full_columns: any miss
        # declines to the load path.
        cond_cols = [c for c, _ in ctx.condition.items]
        pcs = {}
        for name in dict.fromkeys([n.lower() for n in ctx.needed] + cond_cols):
            pc = table.columns.get(name)
            if pc is None or not ctx.pin((table.name, pc.name)):
                return None
            if not pc.is_fully_loaded or pc.values is None:
                return None
            pcs[name] = pc
        crack_on = None
        for col, interval in ctx.condition.items:
            if pcs[col].values.dtype.kind in "ifu" and _crackable(interval):
                crack_on = (col, interval)
                break
        if crack_on is None:
            return None
        col, interval = crack_on
        hot = ctx.advisor.note_range_scan(entry.name.lower(), col)
        if hot < cfg.crack_after and col not in entry.crackers:
            return None  # not hot enough yet: the mask route serves
        key = entry.cracker_key(col)
        with entry.cracker_lock:
            cracker = entry.crackers.get(col)
            if cracker is None:
                cracker = CrackerColumn(pcs[col].values)
                entry.crackers[col] = cracker
                ctx.memory.register(
                    key,
                    cracker.values.nbytes + cracker.rowids.nbytes,
                    dropper=lambda e=entry, c=col: e.crackers.pop(c, None),
                    pinned=True,
                )
                ctx.pinned_keys.append(key)
            elif ctx.pin(key):
                ctx.memory.touch(key)
            else:
                # Evicted between the dict read and the pin: drop the
                # orphan and let a later query rebuild.
                entry.crackers.pop(col, None)
                return None
            before = cracker.stats.cracks
            rowids = np.sort(cracker.select_rowids(interval))
            ctx.qstats.cracks += cracker.stats.cracks - before
        # Exact qualifying set: re-mask every conjunct over the cracked
        # candidates.  For the cracked column this pins down open/closed
        # edges and NaNs (which the cracker keeps right of every cut);
        # for the others it is the usual residual-range filtering.
        keep = np.ones(len(rowids), dtype=bool)
        for ccol, cinterval in ctx.condition.items:
            keep &= cinterval.mask(pcs[ccol].values[rowids])
        rowids = rowids[keep]
        arrays = {}
        for name in ctx.needed:
            pc = pcs[name.lower()]
            ctx.memory.touch((table.name, pc.name))
            arrays[name.lower()] = pc.values[rowids]
        ctx.qstats.served_by_cracker = True
        return TableView(
            nrows=len(rowids),
            arrays=arrays,
            served_from_store=True,
            went_to_file=False,
        )

    @staticmethod
    def _absorb_pass(ctx: LoadContext, result: PassResult) -> None:
        ctx.qstats.tokenizer.merge(result.tokenizer)
        ctx.qstats.parse.merge(result.parse)
        ctx.qstats.went_to_file = True
        ctx.qstats.parallel_partitions = max(
            ctx.qstats.parallel_partitions, result.partitions
        )
        ctx.qstats.zone_map_skips += result.zone_map_skips

    @staticmethod
    def _store_full_columns(
        ctx: LoadContext, table: Table, result: PassResult
    ) -> None:
        """Store completely loaded columns and register them for eviction."""
        for name, values in result.columns.items():
            pc = table.column(name)
            newly = pc.store_full(values)
            ctx.qstats.rows_loaded += newly
            _register(ctx, table, name)
            if (
                ctx.config.persist_loads
                and ctx.binary is not None
                and pc.dtype.is_numeric
            ):
                ctx.binary.save(table.name, pc.name, pc.dtype, pc.values)

    @staticmethod
    def _restore_from_binary(ctx: LoadContext, missing: list[str]) -> list[str]:
        """Reload columns from the binary store (cold run); return the rest."""
        if ctx.binary is None:
            return missing
        still_missing = []
        for name in missing:
            if not ctx.binary.has(ctx.entry.name, name):
                still_missing.append(name)
                continue
            values = ctx.binary.load(ctx.entry.name, name)
            table = ctx.entry.ensure_table(len(values))
            pc = table.column(name)
            ctx.qstats.rows_loaded += pc.store_full(values)
            _register(ctx, table, name)
        return still_missing

    @staticmethod
    def _view_from_store(
        ctx: LoadContext, table: Table, served_from_store: bool, went_to_file: bool
    ) -> TableView:
        arrays = {}
        for name in ctx.needed:
            pc = table.column(name)
            if not pc.is_fully_loaded:
                raise ExecutionError(
                    f"internal: column {name!r} expected fully loaded"
                )
            ctx.memory.touch((table.name, pc.name))
            arrays[name.lower()] = pc.values
        return TableView(
            nrows=table.nrows,
            arrays=arrays,
            served_from_store=served_from_store,
            went_to_file=went_to_file,
        )


def _crackable(interval: ValueInterval) -> bool:
    """Can a cracker answer this interval?  Needs at least one finite,
    non-bool numeric bound (NaN pivots are refused by the cracker)."""
    if interval.lo is None and interval.hi is None:
        return False
    for bound in (interval.lo, interval.hi):
        if bound is None:
            continue
        if isinstance(bound, bool) or not isinstance(
            bound, (int, float, np.integer, np.floating)
        ):
            return False
        if isinstance(bound, (float, np.floating)) and math.isnan(bound):
            return False
    return True


def _register(ctx: LoadContext, table: Table, column_name: str) -> None:
    pc = table.column(column_name)
    key = (table.name, pc.name)

    def dropper() -> None:
        pc.drop()

    # Pinned for the duration of the current query (the engine releases the
    # context's pins after the views are built) so a query cannot evict its
    # own data.  ``mapped`` tracks whether the column is (still) backed by
    # a persistent-store memmap rather than heap bytes.
    ctx.memory.register(
        key, pc.logical_nbytes, dropper, pinned=True, mapped=pc.is_mapped
    )
    ctx.pinned_keys.append(key)


# ---------------------------------------------------------------------------
# fullload
# ---------------------------------------------------------------------------


class FullLoadPolicy(LoadingPolicy):
    """Load the complete table on first touch — the DBMS baseline."""

    name = "fullload"

    def try_serve_warm(self, ctx: LoadContext) -> TableView | None:
        return self._warm_cracked(ctx) or self._warm_full_columns(ctx)

    def provide(self, ctx: LoadContext) -> TableView:
        entry = ctx.entry
        went_to_file = False
        binary_warm = ctx.binary is not None and ctx.binary.nrows(entry.name) is not None
        if entry.table is None and not binary_warm:
            result = full_load_pass(entry, ctx.config)
            table = entry.ensure_table(result.nrows)
            self._absorb_pass(ctx, result)
            self._store_full_columns(ctx, table, result)
            went_to_file = True
        if entry.table is None and binary_warm:
            entry.ensure_table(ctx.binary.nrows(entry.name))
        table = entry.table
        missing = [n for n in ctx.needed if not table.column(n).is_fully_loaded]
        missing = self._restore_from_binary(ctx, missing)
        if missing:  # possible after eviction or a cold start with gaps
            result = column_load_pass(entry, missing, ctx.config)
            self._absorb_pass(ctx, result)
            self._store_full_columns(ctx, table, result)
            went_to_file = True
        return self._view_from_store(
            ctx, table, served_from_store=not went_to_file, went_to_file=went_to_file
        )


# ---------------------------------------------------------------------------
# external
# ---------------------------------------------------------------------------


class ExternalTablePolicy(LoadingPolicy):
    """Re-parse the flat file on every query; remember nothing.

    Models the MySQL CSV engine: a row engine that materializes whole
    tuples (tokenizes every field), converts what the query needs, and
    keeps no state between queries.
    """

    name = "external"

    def provide(self, ctx: LoadContext) -> TableView:
        result = external_pass(ctx.entry, ctx.needed, ctx.config)
        self._absorb_pass(ctx, result)
        ctx.entry.ensure_table(result.nrows)  # schema/row-count bookkeeping only
        return TableView(
            nrows=result.nrows,
            arrays={k.lower(): v for k, v in result.columns.items()},
            served_from_store=False,
            went_to_file=True,
        )


# ---------------------------------------------------------------------------
# column loads
# ---------------------------------------------------------------------------


class ColumnLoadsPolicy(LoadingPolicy):
    """Adaptive loading at column granularity (Figure 3/4 "Column Loads")."""

    name = "column_loads"

    def try_serve_warm(self, ctx: LoadContext) -> TableView | None:
        return self._warm_cracked(ctx) or self._warm_full_columns(ctx)

    def provide(self, ctx: LoadContext) -> TableView:
        entry = ctx.entry
        table = entry.table
        if table is None:
            missing = list(ctx.needed)
        else:
            missing = [n for n in ctx.needed if not table.column(n).is_fully_loaded]
        went_to_file = False
        missing = self._restore_from_binary(ctx, missing)
        if missing:
            result = column_load_pass(entry, missing, ctx.config)
            table = entry.ensure_table(result.nrows)
            self._absorb_pass(ctx, result)
            self._store_full_columns(ctx, table, result)
            went_to_file = True
        return self._view_from_store(
            ctx, entry.table, served_from_store=not went_to_file, went_to_file=went_to_file
        )


# ---------------------------------------------------------------------------
# partial loads V1
# ---------------------------------------------------------------------------


class PartialLoadsV1Policy(LoadingPolicy):
    """Selection-pushdown loading that discards everything after the query.

    "Partial Loads throws away the data immediately after every query ...
    never paying the I/O cost to write the data back to disk and always
    reading just enough from the file."  Cheapest possible single query,
    zero benefit for the next one.
    """

    name = "partial_v1"

    def provide(self, ctx: LoadContext) -> TableView:
        result = partial_load_pass(ctx.entry, ctx.needed, ctx.condition, ctx.config)
        self._absorb_pass(ctx, result)
        ctx.entry.ensure_table(result.nrows)
        return TableView(
            nrows=len(result.row_ids),
            arrays={k.lower(): v for k, v in result.columns.items()},
            served_from_store=False,
            went_to_file=True,
        )


# ---------------------------------------------------------------------------
# partial loads V2
# ---------------------------------------------------------------------------


class PartialLoadsV2Policy(LoadingPolicy):
    """Pushdown loading that *keeps* fragments and reuses them.

    The table of contents is the certificate machinery of
    :mod:`repro.storage.partial`: a query is served from the store when
    every needed column holds a certificate implied by the query's range
    condition (repeat queries, zoom-ins); otherwise one partial pass loads
    the qualifying rows, stores them, and certifies them for the future.
    """

    name = "partial_v2"

    def try_serve_warm(self, ctx: LoadContext) -> TableView | None:
        table = ctx.entry.table
        if table is None:
            return None
        # Pin first: certificates only ever change under the table write
        # lock, but eviction does not hold it — pinning every needed
        # column freezes the fragments the coverage check relies on.
        for name in ctx.needed:
            pc = table.columns.get(name.lower())
            if pc is None:
                return None
            if not ctx.pin((table.name, pc.name)):
                return None
        if not self._covered(table, ctx):
            return None
        return self._serve_from_store(ctx, table)

    def provide(self, ctx: LoadContext) -> TableView:
        entry = ctx.entry
        table = entry.table
        if table is not None and self._covered(table, ctx):
            return self._serve_from_store(ctx, table)
        result = partial_load_pass(entry, ctx.needed, ctx.condition, ctx.config)
        table = entry.ensure_table(result.nrows)
        self._absorb_pass(ctx, result)
        certificate = CoverageCertificate(
            Condition() if result.is_full_rows else ctx.condition
        )
        for name, values in result.columns.items():
            pc = table.column(name)
            newly = pc.store(result.row_ids, values)
            pc.add_certificate(certificate)
            ctx.qstats.rows_loaded += newly
            _register(ctx, table, name)
        return TableView(
            nrows=len(result.row_ids),
            arrays={k.lower(): v for k, v in result.columns.items()},
            served_from_store=False,
            went_to_file=True,
        )

    @staticmethod
    def _covered(table: Table, ctx: LoadContext) -> bool:
        for name in ctx.needed:
            key = name.lower()
            pc = table.columns.get(key)
            if pc is None or not pc.covers_query(ctx.condition):
                return False
        return True

    def _serve_from_store(self, ctx: LoadContext, table: Table) -> TableView:
        mask = np.ones(table.nrows, dtype=bool)
        for col, interval in ctx.condition.items:
            pc = table.column(col)
            mask &= pc.qualifying_mask(interval)
            ctx.memory.touch((table.name, pc.name))
        row_ids = np.nonzero(mask)[0].astype(np.int64)
        arrays = {}
        for name in ctx.needed:
            pc = table.column(name)
            ctx.memory.touch((table.name, pc.name))
            arrays[name.lower()] = pc.values_at(row_ids)
        return TableView(
            nrows=len(row_ids),
            arrays=arrays,
            served_from_store=True,
            went_to_file=False,
        )


# ---------------------------------------------------------------------------
# split files
# ---------------------------------------------------------------------------


class SplitFilesPolicy(LoadingPolicy):
    """Column loads over an adaptively cracked file (Figure 4 "Split Files").

    Missing columns are fetched through the
    :class:`~repro.core.splitfile.SplitFileCatalog`, which reads single
    files when earlier passes already split the needed columns out, and
    splits remainders as a side effect otherwise.
    """

    name = "splitfiles"

    def try_serve_warm(self, ctx: LoadContext) -> TableView | None:
        return self._warm_cracked(ctx) or self._warm_full_columns(ctx)

    def provide(self, ctx: LoadContext) -> TableView:
        entry = ctx.entry
        if ctx.split is None:
            raise ExecutionError("splitfiles policy requires a split catalog")
        schema = entry.ensure_schema()
        table = entry.table
        if table is None:
            missing = list(ctx.needed)
        else:
            missing = [n for n in ctx.needed if not table.column(n).is_fully_loaded]
        went_to_file = False
        missing = self._restore_from_binary(ctx, missing)
        if missing:
            went_to_file = True
            indices = [schema.index_of(n) for n in missing]
            fetched = ctx.split.fetch_columns(indices)
            ctx.qstats.tokenizer.merge(fetched.stats)
            ctx.qstats.went_to_file = True
            ctx.qstats.split_files_written += fetched.files_written
            nrows = len(next(iter(fetched.fields.values())))
            table = entry.ensure_table(nrows)
            for name in missing:
                idx = schema.index_of(name)
                values = parse_column_with_widening(
                    entry, idx, fetched.fields[idx], ctx.qstats.parse
                )
                pc = table.column(name)
                newly = pc.store_full(values)
                ctx.qstats.rows_loaded += newly
                _register(ctx, table, name)
                if (
                    ctx.config.persist_loads
                    and ctx.binary is not None
                    and pc.dtype.is_numeric
                ):
                    ctx.binary.save(table.name, pc.name, pc.dtype, pc.values)
        return self._view_from_store(
            ctx, ctx.entry.table, served_from_store=not went_to_file, went_to_file=went_to_file
        )


_POLICY_CLASSES: dict[str, type[LoadingPolicy]] = {
    cls.name: cls
    for cls in (
        FullLoadPolicy,
        ExternalTablePolicy,
        ColumnLoadsPolicy,
        PartialLoadsV1Policy,
        PartialLoadsV2Policy,
        SplitFilesPolicy,
    )
}


def make_policy(name: str) -> LoadingPolicy:
    """Instantiate a policy by its :data:`repro.config.POLICIES` name."""
    try:
        return _POLICY_CLASSES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {sorted(_POLICY_CLASSES)}"
        ) from None
