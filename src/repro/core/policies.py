"""Loading policies: the strategies of sections 3-4 behind one interface.

A :class:`LoadingPolicy` receives one query's requirements for one table —
needed columns and the conjunctive range condition — and returns a
:class:`TableView` of column vectors the executor can run on.  How much of
the raw file gets touched, what is kept in the adaptive store, and what a
repeat query will cost are entirely the policy's business:

========================  ====================================================
``fullload``              classic DBMS: first touch loads everything
``external``              MySQL CSV engine: re-parse whole rows every query
``column_loads``          load whole missing columns on demand (section 3.2)
``partial_v1``            pushdown loading, discard after query (section 3.2)
``partial_v2``            pushdown loading, keep + reuse fragments (section 4)
``splitfiles``            file cracking: split-as-you-load (section 4)
========================  ====================================================

The **universe convention**: a view presents either all table rows or only
rows qualifying the query's recognized range condition.  Both are sound
because the executor re-applies the full WHERE clause; conjunctive range
predicates are idempotent, and residual predicates always run after the
view is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import EngineConfig
from repro.core.loader import (
    PassResult,
    column_load_pass,
    external_pass,
    full_load_pass,
    parse_column_with_widening,
    partial_load_pass,
)
from repro.core.splitfile import SplitFileCatalog
from repro.core.statistics import QueryStats
from repro.errors import ExecutionError
from repro.ranges import Condition
from repro.storage.binarystore import BinaryStore
from repro.storage.catalog import TableEntry
from repro.storage.memory import MemoryManager
from repro.storage.partial import CoverageCertificate
from repro.storage.table import Table


@dataclass
class LoadContext:
    """Everything a policy needs to satisfy one query on one table."""

    entry: TableEntry
    needed: list[str]
    condition: Condition
    config: EngineConfig
    memory: MemoryManager
    qstats: QueryStats
    split: SplitFileCatalog | None = None
    binary: BinaryStore | None = None
    #: Memory-manager pins this context holds; the engine releases them
    #: (one :meth:`MemoryManager.unpin` each) once the view is built.
    pinned_keys: list[tuple[str, str]] = field(default_factory=list)

    def pin(self, key: tuple[str, str]) -> bool:
        """Pin a fragment for the duration of this context; record it."""
        if self.memory.pin(key):
            self.pinned_keys.append(key)
            return True
        return False


@dataclass
class TableView:
    """Column vectors presented to the executor for one table."""

    nrows: int
    arrays: dict[str, np.ndarray]
    served_from_store: bool = False
    went_to_file: bool = False

    def get_column(self, name: str) -> np.ndarray:
        try:
            return self.arrays[name.lower()]
        except KeyError:
            raise ExecutionError(
                f"column {name!r} was not provided by the loading policy"
            ) from None


class LoadingPolicy:
    """Base class; subclasses implement :meth:`provide`."""

    name = "abstract"

    def provide(self, ctx: LoadContext) -> TableView:  # pragma: no cover
        raise NotImplementedError

    def try_serve_warm(self, ctx: LoadContext) -> TableView | None:
        """Serve the query purely from resident fragments, or decline.

        Called by the engine under the table's shared *read* lock, so it
        must not mutate the entry, the store or the positional map — the
        only side effects allowed are memory-manager pins/touches.
        Returning ``None`` sends the caller to the exclusive load path.
        Stateless policies (``external``, ``partial_v1``) keep nothing
        and therefore never serve warm.
        """
        return None

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _warm_full_columns(ctx: LoadContext) -> TableView | None:
        """Read-only store probe: every needed column fully resident.

        Pins each fragment *before* inspecting it so a concurrent
        eviction (which runs under the memory manager's lock, not the
        table lock) cannot drop a column between the check and the
        snapshot.  Any miss declines — the load path re-checks under the
        write lock.
        """
        table = ctx.entry.table
        if table is None:
            return None
        arrays: dict[str, np.ndarray] = {}
        for name in ctx.needed:
            pc = table.columns.get(name.lower())
            if pc is None:
                return None
            key = (table.name, pc.name)
            if not ctx.pin(key):
                return None
            if not pc.is_fully_loaded or pc.values is None:
                return None
            ctx.memory.touch(key)
            arrays[name.lower()] = pc.values
        return TableView(
            nrows=table.nrows,
            arrays=arrays,
            served_from_store=True,
            went_to_file=False,
        )

    @staticmethod
    def _absorb_pass(ctx: LoadContext, result: PassResult) -> None:
        ctx.qstats.tokenizer.merge(result.tokenizer)
        ctx.qstats.parse.merge(result.parse)
        ctx.qstats.went_to_file = True
        ctx.qstats.parallel_partitions = max(
            ctx.qstats.parallel_partitions, result.partitions
        )

    @staticmethod
    def _store_full_columns(
        ctx: LoadContext, table: Table, result: PassResult
    ) -> None:
        """Store completely loaded columns and register them for eviction."""
        for name, values in result.columns.items():
            pc = table.column(name)
            newly = pc.store_full(values)
            ctx.qstats.rows_loaded += newly
            _register(ctx, table, name)
            if (
                ctx.config.persist_loads
                and ctx.binary is not None
                and pc.dtype.is_numeric
            ):
                ctx.binary.save(table.name, pc.name, pc.dtype, pc.values)

    @staticmethod
    def _restore_from_binary(ctx: LoadContext, missing: list[str]) -> list[str]:
        """Reload columns from the binary store (cold run); return the rest."""
        if ctx.binary is None:
            return missing
        still_missing = []
        for name in missing:
            if not ctx.binary.has(ctx.entry.name, name):
                still_missing.append(name)
                continue
            values = ctx.binary.load(ctx.entry.name, name)
            table = ctx.entry.ensure_table(len(values))
            pc = table.column(name)
            ctx.qstats.rows_loaded += pc.store_full(values)
            _register(ctx, table, name)
        return still_missing

    @staticmethod
    def _view_from_store(
        ctx: LoadContext, table: Table, served_from_store: bool, went_to_file: bool
    ) -> TableView:
        arrays = {}
        for name in ctx.needed:
            pc = table.column(name)
            if not pc.is_fully_loaded:
                raise ExecutionError(
                    f"internal: column {name!r} expected fully loaded"
                )
            ctx.memory.touch((table.name, pc.name))
            arrays[name.lower()] = pc.values
        return TableView(
            nrows=table.nrows,
            arrays=arrays,
            served_from_store=served_from_store,
            went_to_file=went_to_file,
        )


def _register(ctx: LoadContext, table: Table, column_name: str) -> None:
    pc = table.column(column_name)
    key = (table.name, pc.name)

    def dropper() -> None:
        pc.drop()

    # Pinned for the duration of the current query (the engine releases the
    # context's pins after the views are built) so a query cannot evict its
    # own data.  ``mapped`` tracks whether the column is (still) backed by
    # a persistent-store memmap rather than heap bytes.
    ctx.memory.register(
        key, pc.logical_nbytes, dropper, pinned=True, mapped=pc.is_mapped
    )
    ctx.pinned_keys.append(key)


# ---------------------------------------------------------------------------
# fullload
# ---------------------------------------------------------------------------


class FullLoadPolicy(LoadingPolicy):
    """Load the complete table on first touch — the DBMS baseline."""

    name = "fullload"

    def try_serve_warm(self, ctx: LoadContext) -> TableView | None:
        return self._warm_full_columns(ctx)

    def provide(self, ctx: LoadContext) -> TableView:
        entry = ctx.entry
        went_to_file = False
        binary_warm = ctx.binary is not None and ctx.binary.nrows(entry.name) is not None
        if entry.table is None and not binary_warm:
            result = full_load_pass(entry, ctx.config)
            table = entry.ensure_table(result.nrows)
            self._absorb_pass(ctx, result)
            self._store_full_columns(ctx, table, result)
            went_to_file = True
        if entry.table is None and binary_warm:
            entry.ensure_table(ctx.binary.nrows(entry.name))
        table = entry.table
        missing = [n for n in ctx.needed if not table.column(n).is_fully_loaded]
        missing = self._restore_from_binary(ctx, missing)
        if missing:  # possible after eviction or a cold start with gaps
            result = column_load_pass(entry, missing, ctx.config)
            self._absorb_pass(ctx, result)
            self._store_full_columns(ctx, table, result)
            went_to_file = True
        return self._view_from_store(
            ctx, table, served_from_store=not went_to_file, went_to_file=went_to_file
        )


# ---------------------------------------------------------------------------
# external
# ---------------------------------------------------------------------------


class ExternalTablePolicy(LoadingPolicy):
    """Re-parse the flat file on every query; remember nothing.

    Models the MySQL CSV engine: a row engine that materializes whole
    tuples (tokenizes every field), converts what the query needs, and
    keeps no state between queries.
    """

    name = "external"

    def provide(self, ctx: LoadContext) -> TableView:
        result = external_pass(ctx.entry, ctx.needed, ctx.config)
        self._absorb_pass(ctx, result)
        ctx.entry.ensure_table(result.nrows)  # schema/row-count bookkeeping only
        return TableView(
            nrows=result.nrows,
            arrays={k.lower(): v for k, v in result.columns.items()},
            served_from_store=False,
            went_to_file=True,
        )


# ---------------------------------------------------------------------------
# column loads
# ---------------------------------------------------------------------------


class ColumnLoadsPolicy(LoadingPolicy):
    """Adaptive loading at column granularity (Figure 3/4 "Column Loads")."""

    name = "column_loads"

    def try_serve_warm(self, ctx: LoadContext) -> TableView | None:
        return self._warm_full_columns(ctx)

    def provide(self, ctx: LoadContext) -> TableView:
        entry = ctx.entry
        table = entry.table
        if table is None:
            missing = list(ctx.needed)
        else:
            missing = [n for n in ctx.needed if not table.column(n).is_fully_loaded]
        went_to_file = False
        missing = self._restore_from_binary(ctx, missing)
        if missing:
            result = column_load_pass(entry, missing, ctx.config)
            table = entry.ensure_table(result.nrows)
            self._absorb_pass(ctx, result)
            self._store_full_columns(ctx, table, result)
            went_to_file = True
        return self._view_from_store(
            ctx, entry.table, served_from_store=not went_to_file, went_to_file=went_to_file
        )


# ---------------------------------------------------------------------------
# partial loads V1
# ---------------------------------------------------------------------------


class PartialLoadsV1Policy(LoadingPolicy):
    """Selection-pushdown loading that discards everything after the query.

    "Partial Loads throws away the data immediately after every query ...
    never paying the I/O cost to write the data back to disk and always
    reading just enough from the file."  Cheapest possible single query,
    zero benefit for the next one.
    """

    name = "partial_v1"

    def provide(self, ctx: LoadContext) -> TableView:
        result = partial_load_pass(ctx.entry, ctx.needed, ctx.condition, ctx.config)
        self._absorb_pass(ctx, result)
        ctx.entry.ensure_table(result.nrows)
        return TableView(
            nrows=len(result.row_ids),
            arrays={k.lower(): v for k, v in result.columns.items()},
            served_from_store=False,
            went_to_file=True,
        )


# ---------------------------------------------------------------------------
# partial loads V2
# ---------------------------------------------------------------------------


class PartialLoadsV2Policy(LoadingPolicy):
    """Pushdown loading that *keeps* fragments and reuses them.

    The table of contents is the certificate machinery of
    :mod:`repro.storage.partial`: a query is served from the store when
    every needed column holds a certificate implied by the query's range
    condition (repeat queries, zoom-ins); otherwise one partial pass loads
    the qualifying rows, stores them, and certifies them for the future.
    """

    name = "partial_v2"

    def try_serve_warm(self, ctx: LoadContext) -> TableView | None:
        table = ctx.entry.table
        if table is None:
            return None
        # Pin first: certificates only ever change under the table write
        # lock, but eviction does not hold it — pinning every needed
        # column freezes the fragments the coverage check relies on.
        for name in ctx.needed:
            pc = table.columns.get(name.lower())
            if pc is None:
                return None
            if not ctx.pin((table.name, pc.name)):
                return None
        if not self._covered(table, ctx):
            return None
        return self._serve_from_store(ctx, table)

    def provide(self, ctx: LoadContext) -> TableView:
        entry = ctx.entry
        table = entry.table
        if table is not None and self._covered(table, ctx):
            return self._serve_from_store(ctx, table)
        result = partial_load_pass(entry, ctx.needed, ctx.condition, ctx.config)
        table = entry.ensure_table(result.nrows)
        self._absorb_pass(ctx, result)
        certificate = CoverageCertificate(
            Condition() if result.is_full_rows else ctx.condition
        )
        for name, values in result.columns.items():
            pc = table.column(name)
            newly = pc.store(result.row_ids, values)
            pc.add_certificate(certificate)
            ctx.qstats.rows_loaded += newly
            _register(ctx, table, name)
        return TableView(
            nrows=len(result.row_ids),
            arrays={k.lower(): v for k, v in result.columns.items()},
            served_from_store=False,
            went_to_file=True,
        )

    @staticmethod
    def _covered(table: Table, ctx: LoadContext) -> bool:
        for name in ctx.needed:
            key = name.lower()
            pc = table.columns.get(key)
            if pc is None or not pc.covers_query(ctx.condition):
                return False
        return True

    def _serve_from_store(self, ctx: LoadContext, table: Table) -> TableView:
        mask = np.ones(table.nrows, dtype=bool)
        for col, interval in ctx.condition.items:
            pc = table.column(col)
            mask &= pc.qualifying_mask(interval)
            ctx.memory.touch((table.name, pc.name))
        row_ids = np.nonzero(mask)[0].astype(np.int64)
        arrays = {}
        for name in ctx.needed:
            pc = table.column(name)
            ctx.memory.touch((table.name, pc.name))
            arrays[name.lower()] = pc.values_at(row_ids)
        return TableView(
            nrows=len(row_ids),
            arrays=arrays,
            served_from_store=True,
            went_to_file=False,
        )


# ---------------------------------------------------------------------------
# split files
# ---------------------------------------------------------------------------


class SplitFilesPolicy(LoadingPolicy):
    """Column loads over an adaptively cracked file (Figure 4 "Split Files").

    Missing columns are fetched through the
    :class:`~repro.core.splitfile.SplitFileCatalog`, which reads single
    files when earlier passes already split the needed columns out, and
    splits remainders as a side effect otherwise.
    """

    name = "splitfiles"

    def try_serve_warm(self, ctx: LoadContext) -> TableView | None:
        return self._warm_full_columns(ctx)

    def provide(self, ctx: LoadContext) -> TableView:
        entry = ctx.entry
        if ctx.split is None:
            raise ExecutionError("splitfiles policy requires a split catalog")
        schema = entry.ensure_schema()
        table = entry.table
        if table is None:
            missing = list(ctx.needed)
        else:
            missing = [n for n in ctx.needed if not table.column(n).is_fully_loaded]
        went_to_file = False
        missing = self._restore_from_binary(ctx, missing)
        if missing:
            went_to_file = True
            indices = [schema.index_of(n) for n in missing]
            fetched = ctx.split.fetch_columns(indices)
            ctx.qstats.tokenizer.merge(fetched.stats)
            ctx.qstats.went_to_file = True
            ctx.qstats.split_files_written += fetched.files_written
            nrows = len(next(iter(fetched.fields.values())))
            table = entry.ensure_table(nrows)
            for name in missing:
                idx = schema.index_of(name)
                values = parse_column_with_widening(
                    entry, idx, fetched.fields[idx], ctx.qstats.parse
                )
                pc = table.column(name)
                newly = pc.store_full(values)
                ctx.qstats.rows_loaded += newly
                _register(ctx, table, name)
                if (
                    ctx.config.persist_loads
                    and ctx.binary is not None
                    and pc.dtype.is_numeric
                ):
                    ctx.binary.save(table.name, pc.name, pc.dtype, pc.values)
        return self._view_from_store(
            ctx, ctx.entry.table, served_from_store=not went_to_file, went_to_file=went_to_file
        )


_POLICY_CLASSES: dict[str, type[LoadingPolicy]] = {
    cls.name: cls
    for cls in (
        FullLoadPolicy,
        ExternalTablePolicy,
        ColumnLoadsPolicy,
        PartialLoadsV1Policy,
        PartialLoadsV2Policy,
        SplitFilesPolicy,
    )
}


def make_policy(name: str) -> LoadingPolicy:
    """Instantiate a policy by its :data:`repro.config.POLICIES` name."""
    try:
        return _POLICY_CLASSES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {sorted(_POLICY_CLASSES)}"
        ) from None
