"""Auto-tuning on top of the robustness monitor (paper section 5.3).

The paper's section 5.3 asks "how the system reaches a good set-up as well
[as] how it adapts when the requirements change again", with adaptation
triggered "purely [by] the query needs".  :class:`AutoTuningEngine` is the
closed loop over the pieces this repository already has:

* the :class:`~repro.core.monitor.RobustnessMonitor` watches per-query
  statistics and produces :class:`~repro.core.monitor.PolicyAdvice`;
* :meth:`NoDBEngine.set_policy` applies a switch in place, keeping the
  adaptive store.

After every query the tuner consults the monitor and applies its advice —
with a cooldown so one noisy window cannot cause flapping, and a switch
log so operators (and tests) can audit every decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.config import EngineConfig
from repro.core.engine import NoDBEngine
from repro.result import QueryResult


@dataclass(frozen=True)
class PolicySwitch:
    """One applied adaptation, for the audit log."""

    query_index: int
    from_policy: str
    to_policy: str
    reason: str


@dataclass
class AutoTuningEngine:
    """A NoDBEngine that follows its own robustness advice.

    Parameters
    ----------
    config:
        Initial engine configuration (initial policy included).
    cooldown:
        Minimum number of queries between applied switches; also the
        number of queries the monitor window needs to refill with
        post-switch behaviour before being trusted again.
    """

    config: EngineConfig = field(default_factory=EngineConfig)
    cooldown: int = 8
    engine: NoDBEngine = field(init=False)
    switches: list[PolicySwitch] = field(default_factory=list)
    _queries_run: int = 0
    # Starts at zero so the first switch is also gated by the cooldown:
    # the tuner must observe at least `cooldown` queries before acting.
    _last_switch_at: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.engine = NoDBEngine(self.config)

    # ------------------------------------------------------------- facade

    def attach(
        self,
        name: str,
        path: Path | str,
        delimiter: str = ",",
        format: str | None = None,
        fixed_widths: tuple[int, ...] | None = None,
    ) -> None:
        self.engine.attach(
            name,
            path,
            delimiter=delimiter,
            format=format,
            fixed_widths=fixed_widths,
        )

    @property
    def policy(self) -> str:
        return self.engine.config.policy

    @property
    def stats(self):
        return self.engine.stats

    def query(self, sql: str) -> QueryResult:
        """Run one query, then adapt if the monitor says so."""
        result = self.engine.query(sql)
        self._queries_run += 1
        if self._queries_run - self._last_switch_at >= self.cooldown:
            advice = self.engine.monitor.advise()
            if advice is not None and advice.switch_to != self.policy:
                self.switches.append(
                    PolicySwitch(
                        query_index=self._queries_run,
                        from_policy=self.policy,
                        to_policy=advice.switch_to,
                        reason=advice.reason,
                    )
                )
                self.engine.set_policy(advice.switch_to)
                # Let the window refill with post-switch observations.
                self.engine.monitor.history.clear()
                self._last_switch_at = self._queries_run
        return result

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "AutoTuningEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
