"""Minimal HTTP client for a ``repro serve`` process — stdlib only.

:class:`RemoteConnection` mirrors the :class:`repro.api.Connection`
surface over the wire protocol of :mod:`repro.server`, so application
code written against ``repro.connect(...)`` works unchanged whether the
engine is in-process or behind a socket::

    conn = repro.connect(url="http://127.0.0.1:8321")
    conn.attach("t", "/data/events.csv")
    result = conn.execute("select count(*) from t")   # RemoteResult
    for page in result.pages():                        # bounded fetches
        ...

Server-side errors re-raise as the *same* :class:`repro.errors.ReproError`
subclass the engine raised (the wire payload carries the stable error
code); overload surfaces as :class:`~repro.errors.OverloadedError` with
the server's ``Retry-After`` hint in ``retry_after_s``.
"""

from __future__ import annotations

import datetime
import email.utils
import json
import math
import random
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import (
    DrainingError,
    OverloadedError,
    ReproError,
    error_from_payload,
)
from repro.result import QueryResult


class RemoteResult:
    """Handle on a result resource held by the server.

    Page 0 arrives with the query response; further pages are fetched
    lazily (and cached) through ``GET /results/<id>/pages/<n>`` — a large
    result never crosses the wire in one response.
    """

    def __init__(
        self, conn: "RemoteConnection", meta: dict, first_page: dict | None = None
    ) -> None:
        self._conn = conn
        self.meta = meta
        self.stats: dict = {}
        self._pages: dict[int, QueryResult] = {}
        if first_page is not None:
            self._pages[0] = QueryResult.from_json_dict(first_page)

    # ------------------------------------------------------------- shape

    @property
    def result_id(self) -> str:
        return self.meta["result_id"]

    @property
    def names(self) -> list[str]:
        return list(self.meta["names"])

    @property
    def num_rows(self) -> int:
        return int(self.meta["num_rows"])

    @property
    def num_pages(self) -> int:
        return int(self.meta["num_pages"])

    @property
    def page_size(self) -> int:
        return int(self.meta["page_size"])

    # ------------------------------------------------------------ paging

    def page(self, n: int) -> QueryResult:
        """Fetch (or reuse) one bounded page as a :class:`QueryResult`."""
        if n not in self._pages:
            payload = self._conn._request(
                "GET", f"/results/{self.result_id}/pages/{n}"
            )
            self._pages[n] = QueryResult.from_json_dict(payload)
        return self._pages[n]

    def pages(self) -> Iterator[QueryResult]:
        """Iterate every page, in order."""
        for n in range(self.num_pages):
            yield self.page(n)

    def to_result(self) -> QueryResult:
        """Materialize the full result locally (fetches remaining pages)."""
        pages = list(self.pages())
        columns = [
            np.concatenate([p.columns[i] for p in pages])
            for i in range(pages[0].num_columns)
        ]
        result = QueryResult(pages[0].names, columns)
        result.stats = dict(self.stats)
        return result

    def rows(self) -> list[tuple]:
        return [row for page in self.pages() for row in page.rows()]

    def scalar(self):
        return self.to_result().scalar()

    def to_dict(self) -> dict[str, list]:
        return self.to_result().to_dict()

    def delete(self) -> None:
        """Drop the server-side resource backing this handle."""
        self._conn._request("DELETE", f"/results/{self.result_id}")

    def __repr__(self) -> str:
        return (
            f"<RemoteResult {self.result_id} rows={self.num_rows} "
            f"pages={self.num_pages}x{self.page_size}>"
        )


def _parse_retry_after(value: str | None) -> float | None:
    """Seconds to wait, from a ``Retry-After`` header, or None.

    RFC 7231 allows two forms — delta-seconds (``"120"``) and an
    HTTP-date (``"Fri, 07 Aug 2026 12:00:00 GMT"``); our own server sends
    the former, but this client may sit behind proxies that rewrite the
    header to the latter.  A past date means "retry now" (0.0).  Anything
    unparseable, negative or non-finite drops the hint rather than
    feeding garbage into a caller's backoff arithmetic.
    """
    if value is None:
        return None
    text = value.strip()
    try:
        seconds = float(text)
    except ValueError:
        pass
    else:
        if math.isfinite(seconds) and seconds >= 0:
            return seconds
        return None
    try:
        when = email.utils.parsedate_to_datetime(text)
    except (TypeError, ValueError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:  # RFC 5322 "-0000": treat as UTC
        when = when.replace(tzinfo=datetime.timezone.utc)
    now = datetime.datetime.now(datetime.timezone.utc)
    return max(0.0, (when - now).total_seconds())


class RemoteConnection:
    """The :class:`repro.api.Connection` surface, over HTTP.

    Transient server conditions are retried transparently: 429
    (overload) and 503 (draining, budget pressure) responses back off —
    honoring the server's ``Retry-After`` hint, capped at
    ``retry_after_cap_s`` so a broken proxy cannot park the client for
    an hour — and connection-level failures (refused, reset, timed out)
    are retried for ``GET`` only, since the server may have applied a
    ``POST`` before the connection died.  ``DELETE`` is never retried:
    it is not idempotent against disposable resources (the first attempt
    may have landed, and a second would delete a successor's namesake).
    ``max_retries=0`` disables retrying entirely.
    """

    #: HTTP statuses that signal a transient server condition.
    _RETRYABLE_STATUSES = frozenset({429, 503})

    def __init__(
        self,
        url: str,
        client_id: str | None = None,
        timeout_s: float = 60.0,
        *,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        max_backoff_s: float = 5.0,
        retry_after_cap_s: float = 30.0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_s < 0 or max_backoff_s < 0 or retry_after_cap_s < 0:
            raise ValueError("backoff settings must be non-negative")
        self.url = url.rstrip("/")
        self.client_id = client_id
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.retry_after_cap_s = retry_after_cap_s
        #: Requests this connection re-sent after a transient failure.
        self.client_retries = 0

    def counters(self) -> dict[str, int]:
        """Client-side counters (the server cannot count our retries)."""
        return {"client_retries": self.client_retries}

    # ----------------------------------------------------------- plumbing

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in range(self.max_retries + 1):
            request = urllib.request.Request(
                self.url + path, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                error = self._wire_error(exc)
                if (
                    attempt >= self.max_retries
                    or method == "DELETE"
                    or error.http_status not in self._RETRYABLE_STATUSES
                ):
                    raise error from None
                delay = self._retry_delay(
                    attempt, getattr(error, "retry_after_s", None)
                )
            except (urllib.error.URLError, ConnectionError, TimeoutError):
                # Connection died somewhere between us and the handler:
                # only a GET is provably safe to repeat.
                if attempt >= self.max_retries or method != "GET":
                    raise
                delay = self._retry_delay(attempt, None)
            self.client_retries += 1
            if delay > 0:
                time.sleep(delay)
        raise AssertionError("retry loop exited without returning or raising")

    def _retry_delay(self, attempt: int, hint: float | None) -> float:
        """Jittered backoff for retry ``attempt`` (0-based).

        A server ``Retry-After`` hint wins over exponential backoff, but
        is capped: an absurd hint (misconfigured proxy, clock skew in an
        HTTP-date) must not stall the caller indefinitely.
        """
        if hint is not None and hint >= 0:
            delay = min(float(hint), self.retry_after_cap_s)
        else:
            delay = min(self.backoff_s * (2.0 ** attempt), self.max_backoff_s)
        # Full jitter in [delay/2, delay]: concurrent clients told to
        # retry at the same instant must not stampede back in lockstep.
        return delay * random.uniform(0.5, 1.0)

    @staticmethod
    def _wire_error(exc: urllib.error.HTTPError) -> ReproError:
        """The server's taxonomy error, rebuilt from the response body."""
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError, OSError):
            payload = {"error": "internal", "message": f"HTTP {exc.code}"}
        error = error_from_payload(payload)
        if isinstance(error, (OverloadedError, DrainingError)):
            retry_after = _parse_retry_after(exc.headers.get("Retry-After"))
            if retry_after is not None:
                error.retry_after_s = retry_after
                error.details["retry_after_s"] = retry_after
        return error

    # ------------------------------------------------------------ catalog

    def attach(
        self,
        name: str,
        path: Path | str,
        delimiter: str = ",",
        format: str | None = None,
        fixed_widths: tuple[int, ...] | None = None,
    ) -> None:
        """Attach a file *on the server's filesystem* as a table."""
        body: dict = {"name": name, "path": str(path), "delimiter": delimiter}
        if format is not None:
            body["format"] = format
        if fixed_widths is not None:
            body["fixed_widths"] = list(fixed_widths)
        self._request("POST", "/tables", body)

    def detach(self, name: str) -> None:
        self._request("DELETE", f"/tables/{name}")

    def tables(self) -> list[str]:
        return list(self._request("GET", "/tables")["tables"])

    def table_info(self, name: str) -> dict:
        """Schema plus adaptive-store warmth of one table."""
        return self._request("GET", f"/tables/{name}")

    def schema(self, name: str) -> list[tuple[str, str]]:
        return [
            (c["name"], c["dtype"]) for c in self.table_info(name)["columns"]
        ]

    # ----------------------------------------------------------- querying

    def execute(self, sql: str, page_size: int | None = None) -> RemoteResult:
        """Run one SELECT; returns a paged :class:`RemoteResult` handle."""
        body: dict = {"sql": sql}
        if page_size is not None:
            body["page_size"] = page_size
        payload = self._request("POST", "/query", body)
        result = RemoteResult(self, payload["result"], first_page=payload["page"])
        result.stats = payload.get("stats", {})
        return result

    def result(self, result_id: str) -> RemoteResult:
        """Re-open a stored result resource by id (results are data)."""
        return RemoteResult(self, self._request("GET", f"/results/{result_id}"))

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def health(self) -> dict:
        return self._request("GET", "/health")

    # ----------------------------------------------------------- lifetime

    def close(self) -> None:
        """Stateless protocol: nothing to release (kept for symmetry)."""

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<repro.client.RemoteConnection {self.url}>"


__all__ = ["RemoteConnection", "RemoteResult"]
