"""Engine configuration.

:class:`EngineConfig` gathers every knob of the adaptive engine in one
immutable-ish dataclass so that experiments can be described declaratively:
the loading policy name, the adaptive-store memory budget, tokenizer
behaviour toggles (the ablation switches of DESIGN.md) and the split-file
working directory.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultPlan

#: Loading policies understood by the engine.  Mirrors the curves of the
#: paper's figures: ``fullload`` is plain MonetDB, ``external`` the MySQL
#: CSV engine, and the rest are the adaptive operators of sections 3-4.
POLICIES = (
    "fullload",
    "external",
    "column_loads",
    "partial_v1",
    "partial_v2",
    "splitfiles",
)


@dataclass
class EngineConfig:
    """All tunables of :class:`repro.core.engine.NoDBEngine`.

    Parameters
    ----------
    policy:
        One of :data:`POLICIES`.  Selects how (and whether) raw data is
        brought into the adaptive store during query processing.
    memory_budget_bytes:
        Upper bound on resident adaptive-store bytes.  ``None`` means
        unbounded.  When the budget would be exceeded, least-recently-used
        fragments are evicted (paper section 5.1.3, "Life-time").
    use_positional_map:
        Learn byte offsets of rows/fields while tokenizing and use them to
        jump directly to needed attributes in later loads (section 4.1.5).
    selective_reads:
        When the positional map already knows the byte range of every field
        a pass needs, read only those ranges from the file (coalesced into
        batched window reads) and gather the fields vectorized, instead of
        re-reading and re-tokenizing the whole file.  Requires
        ``use_positional_map``; off is the ablation baseline.
    selective_read_max_gap:
        Byte ranges closer than this are merged into one window read on the
        selective path.  Larger values trade extra bytes read for fewer
        seek+read calls; ``0`` merges only touching ranges.
    parallel_workers:
        Number of workers for the partitioned parallel scan.  ``1``
        (default) keeps every pass serial.  With ``N > 1``, first-pass
        tokenize/parse work over large files is split into up to ``N``
        newline-aligned row-range partitions processed by a process pool,
        and warm windowed reads on the selective path use up to ``N``
        threads.  ``0`` means "one worker per CPU".
    partition_min_bytes:
        Never create a row-range partition smaller than this many bytes;
        files smaller than two minimum-size partitions are scanned
        serially regardless of ``parallel_workers`` (pool dispatch costs
        more than it saves on small files).  The default is 4 MiB: with
        the vectorized tokenization kernel a worker clears a megabyte in
        milliseconds, so smaller partitions would be dominated by task
        dispatch and result pickling — the regression the old 1 MiB
        default exhibited on the ``parallel_scan`` bench.
    vectorized_tokenizer:
        Route cold scans through the NumPy bulk-tokenization kernel
        (:mod:`repro.flatfile.vectorized`) for dialects that support it
        (plain delimited, TSV, fixed-width).  Outputs, learned positional
        maps and work counters are identical to the scalar tokenizer —
        off is the ablation/differential-testing baseline.
    parallel_start_method:
        Multiprocessing start method for the scan worker pool: ``None``
        (default) prefers ``fork`` where available — cheap, and safe for
        scripts/notebooks because workers never re-execute the host's
        ``__main__``.  Multi-threaded host applications should set
        ``"forkserver"`` or ``"spawn"``: forking a threaded process can
        copy held locks into the children.
    tokenizer_early_abort:
        Stop tokenizing a row once the last needed column has been seen
        (section 3.2).
    predicate_pushdown:
        Apply WHERE predicates while parsing, abandoning a row as soon as
        one conjunct fails (the "Partial Loads" trick of section 3.2).
    zone_maps:
        Learn per-zone (fixed row range) min/max/null-count statistics
        for numeric columns as a side effect of full-row passes, and use
        them on the selective-read path to skip the window reads of
        zones a range predicate cannot match.  Off is the ablation
        baseline.
    zone_map_rows:
        Rows per zone.  Smaller zones skip more precisely but cost more
        statistics; the default keeps the statistics a negligible
        fraction of the column.
    cracking:
        Allow warm queries over fully resident numeric columns to build
        and use a :class:`~repro.cracking.cracker.CrackerColumn` per hot
        predicate column, answering range selections from the cracker
        index instead of full-column masks.  Crackers are budgeted by
        the memory manager and invalidated with the rest of the learned
        state when the source file changes.
    crack_after:
        Build a column's cracker once the monitor has seen this many
        warm range scans against it (``1`` cracks eagerly; higher values
        make one-off predicates stay on the cheap mask route).
    splitfile_dir:
        Where split (cracked) per-column files are written.  Defaults to a
        per-engine temporary directory.
    auto_invalidate:
        Detect edits to attached flat files (size/mtime/content-probe
        fingerprints) and transparently drop derived data (section 5.4's
        "simple solution").
    append_extension:
        When an edit is a *pure tail-append* (the file grew and the prior
        region is byte-identical — the dominant change on growing logs),
        extend the learned state over the appended region instead of
        wiping it: the positional map absorbs offsets for the new tail
        only, fully loaded columns parse and concatenate just the new
        rows, zone maps gain zones, and the partition plan appends one
        tail partition.  Crackers and cached results (whose answers
        genuinely changed) still invalidate.  Off forces every edit down
        the full-invalidation path.
    io_bandwidth_bytes_per_sec:
        Optional simulated I/O throttle.  When set, every read of ``n``
        bytes from a flat file additionally sleeps ``n / bandwidth``
        seconds.  Used by the Figure 1a bench to recreate the memory-wall
        knee of loading cost without a real 1-billion-tuple table.
    eviction_policy:
        ``"lru"`` (default) or ``"fifo"``; how victims are chosen when the
        memory budget is exceeded.
    persist_loads:
        Write fully loaded columns to the binary store (the engine's
        internal on-disk format).  This is part of what a classic load
        costs — MonetDB writes BATs — and what makes a later *cold* engine
        start cheap: it restores from binary instead of re-parsing CSV.
    binary_store_dir:
        Where binary columns live.  Required when ``persist_loads`` is on;
        point a fresh engine at an existing directory for a cold run.
    binary_write_bandwidth / binary_read_bandwidth:
        Optional simulated disk bandwidth for the binary store
        (bytes/second), used by the Figure 1a memory-wall simulation.
    store_dir:
        Root of the **persistent adaptive store**: a fingerprint-keyed
        on-disk cache of learned state (positional maps, partition
        plans, widened schemas, fully loaded columns).  A fresh engine
        pointed at a warm ``store_dir`` restores a table restart-warm —
        numeric columns come back as shared read-only ``np.memmap``
        arrays — instead of re-paying the cold scan; entries are written
        off the query path after a cold load and invalidated whenever
        the source file's fingerprint changes.  ``None`` (default)
        disables persistence.
    persistent_store:
        Master switch for the persistent adaptive store; with ``False``
        a configured ``store_dir`` is ignored (the ``--no-persistent-
        store`` CLI escape hatch).
    result_cache:
        Cache completed query results keyed by (normalized statement,
        file signature) and serve byte-identical repeats without loading
        or executing anything.  Cached bytes are charged to
        ``memory_budget_bytes`` and invalidated by the same staleness
        path that drops positional maps.  Off by default: result reuse
        changes the per-query work counters the paper's figures measure.
    max_cached_results:
        Entry cap of the result cache (least recently used beyond it is
        dropped).
    io_retry_attempts / io_retry_backoff_s:
        Bounded retry of transient raw-file read errors: each flat-file
        read is attempted up to ``io_retry_attempts`` times with
        exponential backoff starting at ``io_retry_backoff_s`` seconds
        before the failure surfaces as a taxonomy
        :class:`~repro.errors.FlatFileError`.  Retries are counted in
        the ``io_retries`` engine counter.
    persist_failure_limit:
        After this many *consecutive* persistent-store write failures
        the store is marked read-only for the rest of the engine's life:
        queries keep being served (warm-only degradation) and no further
        writes are attempted.  Each failure bumps the
        ``persist_failures`` counter; a successful write resets the
        consecutive count.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` compiled into the
        engine's real I/O paths for deterministic failure testing.  When
        unset, the ``REPRO_FAULTS`` environment hook is consulted once
        at engine construction (see :mod:`repro.faults`).  Production
        deployments leave both unset: every fault check is then a dict
        miss.
    global_lock:
        Serialize the whole load/metadata phase through one engine-wide
        lock — the paper section 5.4 "simple solution", kept as the
        baseline for `benchmarks/bench_concurrent.py` and as an escape
        hatch.  Off by default: per-table reader–writer locking lets
        queries over distinct tables (and warm queries over the same
        table) proceed fully in parallel.
    """

    policy: str = "column_loads"
    memory_budget_bytes: int | None = None
    use_positional_map: bool = True
    selective_reads: bool = True
    selective_read_max_gap: int = 4
    parallel_workers: int = 1
    partition_min_bytes: int = 4 << 20
    parallel_start_method: str | None = None
    vectorized_tokenizer: bool = True
    tokenizer_early_abort: bool = True
    predicate_pushdown: bool = True
    zone_maps: bool = True
    zone_map_rows: int = 1024
    cracking: bool = True
    crack_after: int = 3
    splitfile_dir: Path | None = None
    auto_invalidate: bool = True
    append_extension: bool = True
    io_bandwidth_bytes_per_sec: float | None = None
    eviction_policy: str = "lru"
    persist_loads: bool = False
    binary_store_dir: Path | None = None
    binary_write_bandwidth: float | None = None
    binary_read_bandwidth: float | None = None
    store_dir: Path | None = None
    persistent_store: bool = True
    result_cache: bool = False
    max_cached_results: int = 256
    global_lock: bool = False
    io_retry_attempts: int = 3
    io_retry_backoff_s: float = 0.005
    persist_failure_limit: int = 3
    fault_plan: "FaultPlan | None" = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; expected one of {POLICIES}")
        if self.eviction_policy not in ("lru", "fifo"):
            raise ValueError(f"unknown eviction policy {self.eviction_policy!r}")
        if self.selective_read_max_gap < 0:
            raise ValueError("selective_read_max_gap must be non-negative")
        if self.parallel_workers < 0:
            raise ValueError("parallel_workers must be >= 1, or 0 for one per CPU")
        if self.partition_min_bytes <= 0:
            raise ValueError("partition_min_bytes must be positive")
        if self.parallel_start_method not in (None, "fork", "forkserver", "spawn"):
            raise ValueError(
                "parallel_start_method must be None, 'fork', 'forkserver' or 'spawn'"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive or None")
        if self.zone_map_rows <= 0:
            raise ValueError("zone_map_rows must be positive")
        if self.crack_after < 1:
            raise ValueError("crack_after must be >= 1")
        if self.max_cached_results <= 0:
            raise ValueError("max_cached_results must be positive")
        if self.io_retry_attempts < 1:
            raise ValueError("io_retry_attempts must be >= 1")
        if self.io_retry_backoff_s < 0:
            raise ValueError("io_retry_backoff_s must be non-negative")
        if self.persist_failure_limit < 1:
            raise ValueError("persist_failure_limit must be >= 1")
        if self.splitfile_dir is not None:
            self.splitfile_dir = Path(self.splitfile_dir)
        if self.persist_loads and self.binary_store_dir is None:
            raise ValueError("persist_loads requires binary_store_dir")
        if self.binary_store_dir is not None:
            self.binary_store_dir = Path(self.binary_store_dir)
        if self.store_dir is not None:
            self.store_dir = Path(self.store_dir)

    def resolved_parallel_workers(self) -> int:
        """The effective worker count (``0`` resolves to the CPU count)."""
        if self.parallel_workers == 0:
            return os.cpu_count() or 1
        return self.parallel_workers

    def resolve_splitfile_dir(self) -> Path:
        """Return the split-file directory, creating a temp dir on demand."""
        if self.splitfile_dir is None:
            self.splitfile_dir = Path(tempfile.mkdtemp(prefix="repro-splitfiles-"))
        self.splitfile_dir.mkdir(parents=True, exist_ok=True)
        return self.splitfile_dir
