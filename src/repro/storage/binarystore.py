"""On-disk binary column store (the engine's "internal format").

A real DBMS's loading cost is not just tokenizing and parsing: the loader
*writes the data back out* in the system's internal format (MonetDB's BATs)
— which is exactly why the paper's Figure 1a loading curve stops scaling
gracefully once tables outgrow memory.  :class:`BinaryStore` is that
internal format here: one little-endian binary file per column plus a
manifest, written when ``EngineConfig.persist_loads`` is on.

It also provides the *cold run* story of Figure 1b: a fresh engine pointed
at a warm binary store restores columns with a cheap binary read instead of
re-parsing the CSV — fast, but measurably slower than the hot engine whose
arrays are already in RAM.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import FlatFileError
from repro.flatfile.schema import DataType


@dataclass
class BinaryStoreStats:
    """I/O accounting for binary reads/writes."""

    bytes_written: int = 0
    bytes_read: int = 0
    columns_written: int = 0
    columns_read: int = 0


@dataclass
class BinaryStore:
    """Directory of binary column files, one subdirectory per table."""

    directory: Path
    write_bandwidth_bytes_per_sec: float | None = None
    read_bandwidth_bytes_per_sec: float | None = None
    stats: BinaryStoreStats = field(default_factory=BinaryStoreStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -------------------------------------------------------------- paths

    def _table_dir(self, table: str) -> Path:
        return self.directory / table.lower()

    def _column_path(self, table: str, column: str) -> Path:
        return self._table_dir(table) / f"{column.lower()}.bin"

    def _manifest_path(self, table: str) -> Path:
        return self._table_dir(table) / "manifest.json"

    # ------------------------------------------------------------ writing

    def save(self, table: str, column: str, dtype: DataType, values: np.ndarray) -> None:
        """Persist one fully loaded column."""
        if dtype is DataType.STRING:
            raise FlatFileError("binary store persists numeric columns only")
        tdir = self._table_dir(table)
        tdir.mkdir(parents=True, exist_ok=True)
        path = self._column_path(table, column)
        data = np.ascontiguousarray(values, dtype=dtype.numpy_dtype)
        data.tofile(path)
        self.stats.bytes_written += data.nbytes
        self.stats.columns_written += 1
        if self.write_bandwidth_bytes_per_sec:
            time.sleep(data.nbytes / self.write_bandwidth_bytes_per_sec)
        manifest = self._read_manifest(table)
        manifest["nrows"] = int(len(values))
        manifest.setdefault("columns", {})[column.lower()] = dtype.value
        self._manifest_path(table).write_text(json.dumps(manifest))

    # ------------------------------------------------------------ reading

    def _read_manifest(self, table: str) -> dict:
        path = self._manifest_path(table)
        if not path.exists():
            return {}
        return json.loads(path.read_text())

    def nrows(self, table: str) -> int | None:
        manifest = self._read_manifest(table)
        return manifest.get("nrows")

    def has(self, table: str, column: str) -> bool:
        manifest = self._read_manifest(table)
        return (
            column.lower() in manifest.get("columns", {})
            and self._column_path(table, column).exists()
        )

    def load(self, table: str, column: str) -> np.ndarray:
        """Read one column back from disk (the cold-run path)."""
        manifest = self._read_manifest(table)
        try:
            dtype_name = manifest["columns"][column.lower()]
        except KeyError:
            raise FlatFileError(
                f"binary store has no column {table}.{column}"
            ) from None
        dtype = DataType(dtype_name)
        path = self._column_path(table, column)
        values = np.fromfile(path, dtype=dtype.numpy_dtype)
        self.stats.bytes_read += values.nbytes
        self.stats.columns_read += 1
        if self.read_bandwidth_bytes_per_sec:
            time.sleep(values.nbytes / self.read_bandwidth_bytes_per_sec)
        return values

    # ----------------------------------------------------------- clearing

    def drop_table(self, table: str) -> None:
        tdir = self._table_dir(table)
        if tdir.exists():
            for f in tdir.iterdir():
                f.unlink()
            tdir.rmdir()

    def bytes_on_disk(self) -> int:
        return sum(
            f.stat().st_size for f in self.directory.rglob("*.bin") if f.is_file()
        )
