"""On-disk binary column store (the engine's "internal format").

A real DBMS's loading cost is not just tokenizing and parsing: the loader
*writes the data back out* in the system's internal format (MonetDB's BATs)
— which is exactly why the paper's Figure 1a loading curve stops scaling
gracefully once tables outgrow memory.  :class:`BinaryStore` is that
internal format here: one little-endian binary file per column plus a
manifest, written when ``EngineConfig.persist_loads`` is on.

It also provides the *cold run* story of Figure 1b: a fresh engine pointed
at a warm binary store restores columns with a cheap binary read instead of
re-parsing the CSV — fast, but measurably slower than the hot engine whose
arrays are already in RAM.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import FlatFileError
from repro.flatfile.schema import DataType


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Crash-safe file write: temp file in the same directory + rename.

    ``os.replace`` is atomic on POSIX, so a reader either sees the old
    complete file or the new complete file — never a torn write.  A crash
    mid-write leaves only a ``.tmp`` orphan, which readers ignore.
    """
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def atomic_write_array(path: Path, values: np.ndarray) -> int:
    """Atomically persist one contiguous array; returns bytes written."""
    data = np.ascontiguousarray(values)
    atomic_write_bytes(path, data.tobytes())
    return data.nbytes


@dataclass
class BinaryStoreStats:
    """I/O accounting for binary reads/writes."""

    bytes_written: int = 0
    bytes_read: int = 0
    columns_written: int = 0
    columns_read: int = 0


@dataclass
class BinaryStore:
    """Directory of binary column files, one subdirectory per table."""

    directory: Path
    write_bandwidth_bytes_per_sec: float | None = None
    read_bandwidth_bytes_per_sec: float | None = None
    stats: BinaryStoreStats = field(default_factory=BinaryStoreStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -------------------------------------------------------------- paths

    def _table_dir(self, table: str) -> Path:
        return self.directory / table.lower()

    def _column_path(self, table: str, column: str) -> Path:
        return self._table_dir(table) / f"{column.lower()}.bin"

    def _manifest_path(self, table: str) -> Path:
        return self._table_dir(table) / "manifest.json"

    # ------------------------------------------------------------ writing

    def save(self, table: str, column: str, dtype: DataType, values: np.ndarray) -> None:
        """Persist one fully loaded column."""
        if dtype is DataType.STRING:
            raise FlatFileError("binary store persists numeric columns only")
        tdir = self._table_dir(table)
        tdir.mkdir(parents=True, exist_ok=True)
        path = self._column_path(table, column)
        data = np.ascontiguousarray(values, dtype=dtype.numpy_dtype)
        atomic_write_bytes(path, data.tobytes())
        self.stats.bytes_written += data.nbytes
        self.stats.columns_written += 1
        if self.write_bandwidth_bytes_per_sec:
            time.sleep(data.nbytes / self.write_bandwidth_bytes_per_sec)
        # Manifest last: a crash between the two leaves a column file the
        # manifest does not yet claim — a cold miss, never a torn entry.
        manifest = self._read_manifest(table)
        manifest["nrows"] = int(len(values))
        manifest.setdefault("columns", {})[column.lower()] = dtype.value
        atomic_write_bytes(
            self._manifest_path(table), json.dumps(manifest).encode("utf-8")
        )

    # ------------------------------------------------------------ reading

    def _read_manifest(self, table: str) -> dict:
        path = self._manifest_path(table)
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError, UnicodeDecodeError):
            # Missing, garbage, or truncated manifest: the store simply
            # does not have this table — a cold miss, never an error.
            return {}
        return manifest if isinstance(manifest, dict) else {}

    def nrows(self, table: str) -> int | None:
        manifest = self._read_manifest(table)
        return manifest.get("nrows")

    def has(self, table: str, column: str) -> bool:
        manifest = self._read_manifest(table)
        columns = manifest.get("columns", {})
        nrows = manifest.get("nrows")
        if column.lower() not in columns or not isinstance(nrows, int):
            return False
        try:
            dtype = DataType(columns[column.lower()])
            size = self._column_path(table, column).stat().st_size
        except (ValueError, OSError):
            return False
        # A truncated (or padded) column file is a cold miss, not data.
        return size == nrows * np.dtype(dtype.numpy_dtype).itemsize

    def load(self, table: str, column: str) -> np.ndarray:
        """Read one column back from disk (the cold-run path)."""
        manifest = self._read_manifest(table)
        try:
            dtype_name = manifest["columns"][column.lower()]
        except KeyError:
            raise FlatFileError(
                f"binary store has no column {table}.{column}"
            ) from None
        dtype = DataType(dtype_name)
        path = self._column_path(table, column)
        values = np.fromfile(path, dtype=dtype.numpy_dtype)
        self.stats.bytes_read += values.nbytes
        self.stats.columns_read += 1
        if self.read_bandwidth_bytes_per_sec:
            time.sleep(values.nbytes / self.read_bandwidth_bytes_per_sec)
        return values

    # ----------------------------------------------------------- clearing

    def drop_table(self, table: str) -> None:
        tdir = self._table_dir(table)
        if tdir.exists():
            for f in tdir.iterdir():
                f.unlink()
            tdir.rmdir()

    def bytes_on_disk(self) -> int:
        return sum(
            f.stat().st_size for f in self.directory.rglob("*.bin") if f.is_file()
        )
