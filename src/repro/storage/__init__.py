"""Column-store substrate: the "MonetDB" under the adaptive loader.

Loaded data lives here as NumPy-backed columns.  The subpackage provides
full columns, partially-loaded columns with a table of contents of what is
materialized, tables, the catalog of attached flat files, physical layout
variants (column / row / PAX) for the adaptive store, and the memory-budget
manager with LRU eviction.
"""

from repro.storage.catalog import Catalog, TableEntry
from repro.storage.column import Column
from repro.storage.intervals import IntervalSet
from repro.storage.memory import MemoryManager
from repro.storage.partial import CoverageCertificate, PartialColumn
from repro.storage.table import Table

__all__ = [
    "Catalog",
    "Column",
    "CoverageCertificate",
    "IntervalSet",
    "MemoryManager",
    "PartialColumn",
    "Table",
    "TableEntry",
]
