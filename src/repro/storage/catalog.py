"""The catalog: attached flat files and everything learned about them.

Attaching a file is the *only* preparation step the paper's vision allows
("all you need to do to use it, is point to your data").  Accordingly,
:meth:`Catalog.attach` does no I/O beyond an existence check.  Schema
detection, row counting, positional-map learning and loading all happen
lazily, as side effects of queries.
"""

from __future__ import annotations

import glob as _glob
import hashlib
import itertools
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import CatalogError, SchemaInferenceError

if TYPE_CHECKING:  # import would be circular at runtime (core -> storage)
    from repro.core.partitions import PartitionIndex
    from repro.core.splitfile import SplitFileCatalog
    from repro.core.zonemaps import ZoneMapIndex
    from repro.cracking.cracker import CrackerColumn
from repro.faults import FaultPlan
from repro.flatfile.files import FileFingerprint, FlatFile
from repro.flatfile.positions import PositionalMap
from repro.flatfile.schema import (
    ColumnSchema,
    TableSchema,
    infer_schema,
    looks_like_header,
    merge_schemas,
)
from repro.locks import RWLock
from repro.storage.table import Table

#: Process-wide attachment epochs: every TableEntry gets a distinct uid,
#: so state keyed on it (e.g. result-cache keys) can never confuse two
#: attachments of the same table name.
_ENTRY_UIDS = itertools.count(1)


@dataclass
class TableEntry:
    """Catalog record of one attached flat file."""

    name: str
    file: FlatFile
    schema: TableSchema | None = None
    has_header: bool = False
    table: Table | None = None
    positional_map: PositionalMap = field(default_factory=PositionalMap)
    #: Cached newline-aligned row-range partitioning (parallel scans);
    #: derived state like the positional map, invalidated with it.
    partitions: "PartitionIndex | None" = None
    #: Per-zone min/max/null-count statistics learned beside the
    #: partition plan as a side effect of full-row passes; lets the
    #: selective path skip whole zones a range predicate cannot match.
    zone_maps: "ZoneMapIndex | None" = None
    #: Cracked copies of hot numeric predicate columns (warm path).
    #: Built and reorganized under :attr:`cracker_lock`; dropped
    #: wholesale whenever the source file's fingerprint changes.
    crackers: dict[str, "CrackerColumn"] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Serializes cracker creation/reorganization.  Crackers own copies
    #: of their base columns, so cracking mutates no entry/store state —
    #: which is why warm serves may crack under the shared *read* lock.
    cracker_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: Split (cracked) per-column files for the splitfiles policy — owned
    #: by the entry (not an engine-wide name-keyed map) so a detached
    #: entry can never leak its catalog to a re-attached namesake.
    #: Only ever created/used under the table's write lock.
    split_catalog: "SplitFileCatalog | None" = None
    loaded_fingerprint: FileFingerprint | None = None
    #: The fingerprint the engine captured *before* any raw read of the
    #: current load (set around ``policy.provide`` under the write lock).
    #: :meth:`ensure_table` brands the freshly created table with it, so
    #: a tail-append landing mid-load is observed by the next staleness
    #: check instead of being masked by a post-read fingerprint.
    pre_fingerprint: FileFingerprint | None = field(
        default=None, repr=False, compare=False
    )
    #: Reader–writer lock serializing store mutation per table: queries
    #: answered from resident fragments share the read side; loads (and
    #: invalidation) take the write side.  Distinct tables never contend.
    rwlock: RWLock = field(default_factory=RWLock, repr=False, compare=False)
    #: Serializes lazy schema inference (callers may hold no table lock).
    schema_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: Bumped on every invalidation; a "cold (table, columns) generation"
    #: in the shared-scan accounting is keyed by this counter.
    generation: int = 0
    #: Tombstone set (under the write lock) when the table is detached: a
    #: query that resolved this entry before the detach must fail instead
    #: of silently repopulating store/split state on an unlisted entry.
    detached: bool = False
    #: Attachment epoch (unique per attach, even of the same name/file):
    #: cached results are keyed on it, so a result computed under one
    #: attachment's parse options can never serve a re-attachment's.
    uid: int = field(default_factory=lambda: next(_ENTRY_UIDS))

    # -------------------------------------------------------------- schema

    def ensure_schema(self) -> TableSchema:
        """Infer the schema on first use (paper section 5.6).

        Thread-safe: concurrent first uses race to the ``schema_lock``
        and exactly one performs the sampling I/O.
        """
        schema = self.schema
        if schema is not None:
            return schema
        with self.schema_lock:
            if self.schema is None:
                self._infer_schema()
            return self.schema

    def _infer_schema(self) -> None:
        rows = self.file.sample_rows()
        if not rows:
            raise CatalogError(f"file {self.file.path} is empty")
        embedded = self.file.adapter.embedded_header
        if embedded is not None:
            # The dialect carries its own column names (JSON-lines
            # keys): no header *line* exists to skip.
            self.has_header = False
            self.schema = infer_schema(rows, header=embedded)
            return
        second = rows[1] if len(rows) > 1 else None
        self.has_header = looks_like_header(rows[0], second)
        if self.has_header:
            header, body = rows[0], rows[1:]
            if not body:
                raise CatalogError(f"file {self.file.path} has a header but no data")
            self.schema = infer_schema(body, header=header)
        else:
            self.schema = infer_schema(rows)

    def ensure_table(self, nrows: int) -> Table:
        """Create the adaptive-store table once the row count is known.

        The table is branded with the *pre-read* fingerprint when the
        engine staged one (:attr:`pre_fingerprint`): bytes were read and
        counted under that identity, so an append landing mid-load makes
        the next staleness check mismatch and observe the new rows.
        Fingerprinting here (the non-engine fallback) would brand old
        bytes with the post-read file identity.
        """
        if self.table is None:
            self.table = Table(self.name, self.ensure_schema(), nrows)
            self.loaded_fingerprint = (
                self.pre_fingerprint
                if self.pre_fingerprint is not None
                else self.file.fingerprint()
            )
        elif self.table.nrows != nrows:
            raise CatalogError(
                f"table {self.name!r}: row count changed from {self.table.nrows} to {nrows}"
            )
        return self.table

    # -------------------------------------------------------- invalidation

    def is_stale(self) -> bool:
        """Has the flat file been edited since data was loaded from it?"""
        if self.loaded_fingerprint is None:
            return False
        return self.file.fingerprint() != self.loaded_fingerprint

    def cracker_key(self, column: str) -> tuple[str, str]:
        """Memory-manager key of one cracked column.

        The NUL byte keeps the namespace disjoint from the plain
        ``(table, column)`` keys of store fragments (table names cannot
        contain NUL)."""
        return (f"{self.name.lower()}\x00crackers", column.lower())

    def invalidate(self) -> None:
        """Drop all derived state (loaded data, learned offsets, schema)."""
        if self.table is not None:
            self.table.drop_all()
        self.table = None
        self.positional_map.clear()
        self.partitions = None
        self.zone_maps = None
        self.crackers.clear()
        if self.split_catalog is not None:
            self.split_catalog.destroy()
            self.split_catalog = None
        self.loaded_fingerprint = None
        self.schema = None
        self.generation += 1
        self.file.reset_format_state()


def has_glob_magic(text: str) -> bool:
    """Does ``text`` contain glob wildcards (``*``, ``?``, ``[``)?"""
    return any(ch in text for ch in "*?[")


@dataclass
class MultiFileEntry:
    """Catalog record of one table backed by many part files.

    Attaching a glob pattern or a directory creates one of these instead
    of a :class:`TableEntry`.  Each matching part file gets its own full
    ``TableEntry`` — per-file fingerprint, positional map, partitions,
    zone maps, persistence, append-extension — and queries serve every
    part independently before concatenating the views (a late union).
    The part set is re-discovered on every query, so "new data arrived"
    is just "a new part file appeared": no re-attach, no invalidation of
    the parts already learned.
    """

    name: str
    pattern: str
    delimiter: str = ","
    bandwidth_bytes_per_sec: float | None = None
    format: str | None = None
    fixed_widths: tuple[int, ...] | None = None
    #: Fault-injection plan inherited by every part's FlatFile.
    fault_plan: "FaultPlan | None" = None
    #: Transient-I/O retry knobs inherited by every part's FlatFile.
    retry_attempts: int = 3
    retry_backoff_s: float = 0.005
    #: Resolved part-path string -> that part's own TableEntry.
    parts: dict[str, TableEntry] = field(default_factory=dict)
    #: The merged (widest-per-column) schema across all parts seen.
    schema: TableSchema | None = None
    #: Serializes part discovery and schema reconciliation.
    parts_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: Parent-level lock for detach tombstoning (parts have their own).
    rwlock: RWLock = field(default_factory=RWLock, repr=False, compare=False)
    detached: bool = False
    uid: int = field(default_factory=lambda: next(_ENTRY_UIDS))

    def discover(self) -> list[Path]:
        """Current part files, sorted by path (empty files are skipped:
        a zero-byte part is data that has not arrived yet)."""
        base = Path(self.pattern)
        if base.is_dir():
            candidates = sorted(base.iterdir())
        else:
            candidates = sorted(Path(p) for p in _glob.glob(self.pattern))
        out = []
        for p in candidates:
            try:
                if p.is_file() and p.stat().st_size > 0:
                    out.append(p)
            except OSError:
                continue  # vanished mid-listing: as if it never matched
        return out

    def _part_name(self, path: Path) -> str:
        # Unique and stable per resolved path: basenames may collide
        # across directories matched by one pattern, and store/memory
        # keys are derived from part names.
        digest = hashlib.blake2b(
            str(path.resolve()).encode(), digest_size=3
        ).hexdigest()
        return f"{self.name}::{path.name}~{digest}"

    def refresh(self) -> tuple[list[TableEntry], list[TableEntry]]:
        """Re-glob the pattern; returns ``(current parts, removed parts)``.

        New part files get entries (with schemas reconciled against the
        merged parent schema — raising on shape disagreement); entries
        whose file disappeared are returned for the engine to invalidate.
        """
        with self.parts_lock:
            found = {str(p): p for p in self.discover()}
            removed = [e for key, e in self.parts.items() if key not in found]
            for key in list(self.parts):
                if key not in found:
                    del self.parts[key]
            for key, path in sorted(found.items()):
                if key in self.parts:
                    continue
                entry = TableEntry(
                    name=self._part_name(path),
                    file=FlatFile(
                        path,
                        delimiter=self.delimiter,
                        bandwidth_bytes_per_sec=self.bandwidth_bytes_per_sec,
                        format=self.format,
                        fixed_widths=self.fixed_widths,
                        fault_plan=self.fault_plan,
                        retry_attempts=self.retry_attempts,
                        retry_backoff_s=self.retry_backoff_s,
                    ),
                )
                self._reconcile_schema(entry)
                self.parts[key] = entry
            if not self.parts:
                raise CatalogError(
                    f"table {self.name!r}: no data files match {self.pattern!r}"
                )
            current = [self.parts[key] for key in sorted(self.parts)]
            return current, removed

    def _reconcile_schema(self, entry: TableEntry) -> None:
        """Fold one new part's inferred schema into the merged schema."""
        part_schema = entry.ensure_schema()
        if self.schema is None:
            merged = part_schema
        else:
            try:
                merged = merge_schemas(self.schema, part_schema)
            except SchemaInferenceError as exc:
                raise CatalogError(
                    f"table {self.name!r}: part file {entry.file.path} "
                    f"does not fit the table: {exc}"
                ) from exc
        self.schema = merged
        # Each part gets its own *copy* of the merged schema: per-part
        # widening mutates schemas in place and must stay per-part (the
        # union path re-widens lagging parts when views are combined).
        entry.schema = TableSchema(
            [ColumnSchema(c.name, c.dtype) for c in merged.columns]
        )

    def ensure_schema(self) -> TableSchema:
        """The merged schema, discovering parts on first use."""
        if self.schema is None:
            self.refresh()
        return self.schema

    def part_entries(self) -> list[TableEntry]:
        """Snapshot of the currently known parts (no re-discovery)."""
        with self.parts_lock:
            return [self.parts[key] for key in sorted(self.parts)]


@dataclass
class Catalog:
    """All attached tables, by lower-cased name."""

    entries: "dict[str, TableEntry | MultiFileEntry]" = field(default_factory=dict)

    def attach(
        self,
        name: str,
        path: Path | str,
        delimiter: str = ",",
        bandwidth_bytes_per_sec: float | None = None,
        format: str | None = None,
        fixed_widths: tuple[int, ...] | None = None,
        fault_plan: FaultPlan | None = None,
        retry_attempts: int = 3,
        retry_backoff_s: float = 0.005,
    ) -> "TableEntry | MultiFileEntry":
        """Attach one flat file (still no I/O beyond an existence check).

        ``format`` selects the file's dialect (see
        :data:`repro.flatfile.dialects.FORMATS`); ``None`` keeps the
        plain delimited substrate, ``"auto"`` defers to the dialect
        sniffer on first real use of the file.

        A ``path`` containing glob wildcards (``*``, ``?``, ``[``) or
        naming a directory attaches a *multi-file* table: every matching
        part file is served with its own fingerprint and learned state,
        and the part set is re-discovered on each query.  The pattern
        may match nothing yet — the first query then fails cleanly, and
        succeeds as soon as a part file appears.
        """
        key = name.lower()
        if key in self.entries:
            raise CatalogError(f"table {name!r} is already attached")
        text = str(path)
        if has_glob_magic(text) or Path(path).is_dir():
            multi = MultiFileEntry(
                name=name,
                pattern=text,
                delimiter=delimiter,
                bandwidth_bytes_per_sec=bandwidth_bytes_per_sec,
                format=format,
                fixed_widths=fixed_widths,
                fault_plan=fault_plan,
                retry_attempts=retry_attempts,
                retry_backoff_s=retry_backoff_s,
            )
            self.entries[key] = multi
            return multi
        entry = TableEntry(
            name=name,
            file=FlatFile(
                Path(path),
                delimiter=delimiter,
                bandwidth_bytes_per_sec=bandwidth_bytes_per_sec,
                format=format,
                fixed_widths=fixed_widths,
                fault_plan=fault_plan,
                retry_attempts=retry_attempts,
                retry_backoff_s=retry_backoff_s,
            ),
        )
        self.entries[key] = entry
        return entry

    def detach(self, name: str) -> None:
        key = name.lower()
        if key not in self.entries:
            raise CatalogError(f"table {name!r} is not attached")
        del self.entries[key]

    def get(self, name: str) -> "TableEntry | MultiFileEntry":
        key = name.lower()
        if key not in self.entries:
            raise CatalogError(
                f"table {name!r} is not attached; call attach(name, path) first"
            )
        return self.entries[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.entries

    def names(self) -> list[str]:
        return [e.name for e in self.entries.values()]
