"""The catalog: attached flat files and everything learned about them.

Attaching a file is the *only* preparation step the paper's vision allows
("all you need to do to use it, is point to your data").  Accordingly,
:meth:`Catalog.attach` does no I/O beyond an existence check.  Schema
detection, row counting, positional-map learning and loading all happen
lazily, as side effects of queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import CatalogError

if TYPE_CHECKING:  # import would be circular at runtime (core -> storage)
    from repro.core.partitions import PartitionIndex
from repro.flatfile.files import FileFingerprint, FlatFile
from repro.flatfile.positions import PositionalMap
from repro.flatfile.schema import TableSchema, infer_schema, looks_like_header
from repro.storage.table import Table


@dataclass
class TableEntry:
    """Catalog record of one attached flat file."""

    name: str
    file: FlatFile
    schema: TableSchema | None = None
    has_header: bool = False
    table: Table | None = None
    positional_map: PositionalMap = field(default_factory=PositionalMap)
    #: Cached newline-aligned row-range partitioning (parallel scans);
    #: derived state like the positional map, invalidated with it.
    partitions: "PartitionIndex | None" = None
    loaded_fingerprint: FileFingerprint | None = None

    # -------------------------------------------------------------- schema

    def ensure_schema(self) -> TableSchema:
        """Infer the schema on first use (paper section 5.6)."""
        if self.schema is None:
            rows = self.file.sample_rows()
            if not rows:
                raise CatalogError(f"file {self.file.path} is empty")
            embedded = self.file.adapter.embedded_header
            if embedded is not None:
                # The dialect carries its own column names (JSON-lines
                # keys): no header *line* exists to skip.
                self.has_header = False
                self.schema = infer_schema(rows, header=embedded)
                return self.schema
            second = rows[1] if len(rows) > 1 else None
            self.has_header = looks_like_header(rows[0], second)
            if self.has_header:
                header, body = rows[0], rows[1:]
                if not body:
                    raise CatalogError(f"file {self.file.path} has a header but no data")
                self.schema = infer_schema(body, header=header)
            else:
                self.schema = infer_schema(rows)
        return self.schema

    def ensure_table(self, nrows: int) -> Table:
        """Create the adaptive-store table once the row count is known."""
        if self.table is None:
            self.table = Table(self.name, self.ensure_schema(), nrows)
            self.loaded_fingerprint = self.file.fingerprint()
        elif self.table.nrows != nrows:
            raise CatalogError(
                f"table {self.name!r}: row count changed from {self.table.nrows} to {nrows}"
            )
        return self.table

    # -------------------------------------------------------- invalidation

    def is_stale(self) -> bool:
        """Has the flat file been edited since data was loaded from it?"""
        if self.loaded_fingerprint is None:
            return False
        return self.file.fingerprint() != self.loaded_fingerprint

    def invalidate(self) -> None:
        """Drop all derived state (loaded data, learned offsets, schema)."""
        if self.table is not None:
            self.table.drop_all()
        self.table = None
        self.positional_map.clear()
        self.partitions = None
        self.loaded_fingerprint = None
        self.schema = None
        self.file.reset_format_state()


@dataclass
class Catalog:
    """All attached tables, by lower-cased name."""

    entries: dict[str, TableEntry] = field(default_factory=dict)

    def attach(
        self,
        name: str,
        path: Path | str,
        delimiter: str = ",",
        bandwidth_bytes_per_sec: float | None = None,
        format: str | None = None,
        fixed_widths: tuple[int, ...] | None = None,
    ) -> TableEntry:
        """Attach one flat file (still no I/O beyond an existence check).

        ``format`` selects the file's dialect (see
        :data:`repro.flatfile.dialects.FORMATS`); ``None`` keeps the
        plain delimited substrate, ``"auto"`` defers to the dialect
        sniffer on first real use of the file.
        """
        key = name.lower()
        if key in self.entries:
            raise CatalogError(f"table {name!r} is already attached")
        entry = TableEntry(
            name=name,
            file=FlatFile(
                Path(path),
                delimiter=delimiter,
                bandwidth_bytes_per_sec=bandwidth_bytes_per_sec,
                format=format,
                fixed_widths=fixed_widths,
            ),
        )
        self.entries[key] = entry
        return entry

    def detach(self, name: str) -> None:
        key = name.lower()
        if key not in self.entries:
            raise CatalogError(f"table {name!r} is not attached")
        del self.entries[key]

    def get(self, name: str) -> TableEntry:
        key = name.lower()
        if key not in self.entries:
            raise CatalogError(
                f"table {name!r} is not attached; call attach(name, path) first"
            )
        return self.entries[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.entries

    def names(self) -> list[str]:
        return [e.name for e in self.entries.values()]
