"""Partially-loaded columns and their coverage table of contents.

This is the storage side of Partial Loads V2 (paper section 4.2): a column
whose values are materialized only for some rows, together with a sound
record of *which queries* those rows are guaranteed to answer.

The record is a list of :class:`CoverageCertificate`\\ s.  A certificate is
a conjunctive condition with the meaning:

    every row of the table that satisfies ``condition`` has its value
    materialized in this column.

Certificates are produced by the adaptive load operators: a partial load
driven by query ``Q`` stores exactly the rows satisfying ``Q`` and issues a
certificate with condition ``Q`` for every column it materialized; a full
column load issues the trivial (always true) certificate.  A later query
``Q'`` can be answered entirely from the store when, for every column it
needs, some certificate's condition is implied by ``Q'`` — e.g. repeated
queries, or "zoom-in" queries whose ranges are subsets of earlier ones,
exactly the exploratory pattern the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExecutionError
from repro.flatfile.schema import DataType
from repro.ranges import Condition
from repro.storage.intervals import IntervalSet


@dataclass(frozen=True)
class CoverageCertificate:
    """Proof that rows satisfying ``condition`` are materialized."""

    condition: Condition

    def covers_query(self, query: Condition) -> bool:
        """True when a query implying ``condition`` is fully answerable."""
        return query.implies(self.condition)

    @property
    def is_full(self) -> bool:
        return self.condition.is_trivial()


@dataclass
class PartialColumn:
    """A column materialized for a subset of rows.

    The backing array always has capacity for all ``nrows`` of the table;
    positions outside :attr:`loaded` contain garbage and must never be read
    without consulting :attr:`loaded_mask`.  Logical (budget-accounted)
    size is proportional to loaded rows only, matching the paper's framing
    of partial loading as a storage-footprint optimization.
    """

    name: str
    dtype: DataType
    nrows: int
    values: np.ndarray | None = None
    loaded: IntervalSet = field(default_factory=IntervalSet)
    loaded_mask: np.ndarray | None = None
    certificates: list[CoverageCertificate] = field(default_factory=list)

    def _ensure_backing(self) -> None:
        if self.values is None:
            if self.dtype is DataType.STRING:
                self.values = np.empty(self.nrows, dtype=object)
            else:
                self.values = np.zeros(self.nrows, dtype=self.dtype.numpy_dtype)
            self.loaded_mask = np.zeros(self.nrows, dtype=bool)

    # -------------------------------------------------------------- loading

    def store(self, row_ids: np.ndarray, values: np.ndarray) -> int:
        """Materialize ``values`` at ``row_ids``; returns rows newly loaded."""
        if len(row_ids) != len(values):
            raise ExecutionError(
                f"store: {len(row_ids)} row ids but {len(values)} values"
            )
        if len(row_ids) == 0:
            return 0
        self._ensure_backing()
        if not self.values.flags.writeable:
            # Restored from the persistent store as a read-only memmap:
            # copy-on-write to the heap before mutating in place.
            self.values = np.array(self.values)
        before = len(self.loaded)
        self.values[row_ids] = values
        self.loaded_mask[row_ids] = True
        self.loaded = self.loaded.union(IntervalSet.from_indices(row_ids))
        return len(self.loaded) - before

    def store_full(self, values: np.ndarray) -> int:
        """Materialize the whole column in one go (column load)."""
        if len(values) != self.nrows:
            raise ExecutionError(
                f"store_full: column has {self.nrows} rows, got {len(values)} values"
            )
        self.values = np.asarray(values, dtype=self.dtype.numpy_dtype if self.dtype.is_numeric else object)
        self.loaded_mask = np.ones(self.nrows, dtype=bool)
        newly = self.nrows - len(self.loaded)
        self.loaded = IntervalSet.from_range(0, self.nrows)
        self.add_certificate(CoverageCertificate(Condition()))
        return newly

    def restore_full(self, values: np.ndarray) -> None:
        """Adopt an externally materialized full column (restart-warm).

        Unlike :meth:`store_full` this keeps the array object as-is: a
        read-only ``np.memmap`` from the persistent store stays a memmap,
        sharing its pages with every co-located engine instead of being
        copied onto the heap by ``np.asarray``'s dtype coercion.
        """
        if len(values) != self.nrows:
            raise ExecutionError(
                f"restore_full: column has {self.nrows} rows, got {len(values)} values"
            )
        self.values = values
        self.loaded_mask = np.ones(self.nrows, dtype=bool)
        self.loaded = IntervalSet.from_range(0, self.nrows)
        self.add_certificate(CoverageCertificate(Condition()))

    def widen(self, dtype: DataType) -> None:
        """Change the column's type to a wider one (schema widening).

        Numeric-to-numeric widening (int64 → float64) converts any loaded
        values in place, preserving fragments and certificates (and the
        budget accounting: logical bytes per numeric value are equal).
        Widening to string drops loaded data instead — the paper's
        lifetime principle makes that always legal, at worst one reload
        away.  The memory manager's registration is refreshed when the
        widened column is re-stored later in the same pass; in the brief
        window in between its stale entry may at worst be "evicted",
        which re-calls the (idempotent) drop.
        """
        if dtype is self.dtype:
            return
        if self.values is not None:
            if dtype.is_numeric and self.dtype.is_numeric:
                self.values = self.values.astype(dtype.numpy_dtype)
            else:
                self.drop()
        self.dtype = dtype

    def grow(self, new_nrows: int, appended: np.ndarray | None = None) -> bool:
        """Grow row capacity to ``new_nrows`` after a pure tail-append.

        A fully loaded column handed the appended rows' parsed values
        stays fully loaded: the values are concatenated (off any memmap
        backing, onto the heap) and the full-coverage certificate is
        refreshed.  Returns True in that case.  Every other state drops
        its fragments instead — a partial certificate's "rows satisfying
        Q are materialized" no longer holds over the grown row space —
        which is always legal under the store's lifetime principle.
        """
        added = new_nrows - self.nrows
        if added < 0:
            raise ExecutionError(
                f"column {self.name!r}: cannot shrink from {self.nrows} to {new_nrows} rows"
            )
        if added == 0:
            return self.is_fully_loaded and self.values is not None
        if (
            self.is_fully_loaded
            and self.values is not None
            and appended is not None
            and len(appended) == added
        ):
            tail = np.asarray(
                appended,
                dtype=self.dtype.numpy_dtype if self.dtype.is_numeric else object,
            )
            self.values = np.concatenate([np.asarray(self.values), tail])
            self.nrows = new_nrows
            self.loaded_mask = np.ones(new_nrows, dtype=bool)
            self.loaded = IntervalSet.from_range(0, new_nrows)
            self.add_certificate(CoverageCertificate(Condition()))
            return True
        self.drop()
        self.nrows = new_nrows
        return False

    def add_certificate(self, cert: CoverageCertificate) -> None:
        """Record coverage, dropping certificates the new one subsumes."""
        if cert.is_full:
            self.certificates = [cert]
            return
        if any(existing.condition == cert.condition for existing in self.certificates):
            return
        if any(existing.is_full for existing in self.certificates):
            return
        self.certificates.append(cert)

    # ------------------------------------------------------------- queries

    @property
    def is_fully_loaded(self) -> bool:
        return len(self.loaded) == self.nrows

    @property
    def is_mapped(self) -> bool:
        """Backed by the persistent store's read-only ``np.memmap``.

        Dropping such a column releases the mapping, never the file.
        """
        return isinstance(self.values, np.memmap)

    def covers_query(self, query: Condition) -> bool:
        return any(cert.covers_query(query) for cert in self.certificates)

    def loaded_values(self) -> np.ndarray:
        """Values at loaded positions, in row order."""
        if self.values is None:
            return np.empty(0, dtype=self.dtype.numpy_dtype)
        return self.values[self.loaded_mask]

    def qualifying_mask(self, interval) -> np.ndarray:
        """Global row mask of loaded rows whose value lies in ``interval``.

        Positions not loaded are False regardless of backing-array garbage.
        """
        if self.values is None:
            return np.zeros(self.nrows, dtype=bool)
        if self.dtype is DataType.STRING:
            member = np.fromiter(
                (self.loaded_mask[i] and interval.contains_value(self.values[i]) for i in range(self.nrows)),
                dtype=bool,
                count=self.nrows,
            )
            return member
        return self.loaded_mask & interval.mask(self.values)

    def values_at(self, row_ids: np.ndarray) -> np.ndarray:
        """Fetch values at specific rows; raises if any row is not loaded."""
        if len(row_ids) == 0:
            return np.empty(0, dtype=self.dtype.numpy_dtype)
        if self.values is None or not self.loaded_mask[row_ids].all():
            raise ExecutionError(
                f"column {self.name!r}: values_at touches rows that are not loaded"
            )
        return self.values[row_ids]

    # ----------------------------------------------------------- accounting

    @property
    def loaded_count(self) -> int:
        return len(self.loaded)

    @property
    def logical_nbytes(self) -> int:
        """Budget-accounted bytes: loaded values only (plus the mask)."""
        if self.values is None:
            return 0
        itemsize = 8 if self.dtype.is_numeric else 24
        return self.loaded_count * itemsize + (self.nrows // 8)

    def drop(self) -> None:
        """Evict everything (adaptive-store lifetime management)."""
        self.values = None
        self.loaded_mask = None
        self.loaded = IntervalSet()
        self.certificates = []
