"""Physical layout variants for the adaptive store (paper section 5.1).

The adaptive store "may contain data in any format, i.e., row-store,
column-store, as well as PAX and its variations", with the format of each
fragment chosen by the queries that loaded it.  This module implements the
three layouts behind one interface so the adaptive kernel can scan any of
them, and so the layout ablation bench can measure their trade-offs:

* :class:`ColumnLayout` — one contiguous array per attribute (DSM).  Best
  for scans touching few attributes; what the paper's prototype uses.
* :class:`RowLayout` — one NumPy structured array; all attributes of a
  tuple adjacent (NSM).  Best for wide tuple reconstruction.
* :class:`PAXLayout` — fixed-size pages, columnar *within* each page
  (minipages).  Row-locality across pages, column-locality within.

All layouts expose ``column(i)`` (vector for scans), ``row(i)`` (tuple
reconstruction) and ``take(rows)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.flatfile.schema import DataType


def _np_dtype(dtype: DataType) -> np.dtype:
    if dtype is DataType.STRING:
        # Structured arrays cannot hold objects cheaply; store as unicode.
        return np.dtype("U32")
    return dtype.numpy_dtype


class Layout:
    """Common interface of all physical layouts."""

    names: list[str]
    dtypes: list[DataType]

    def __len__(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def column(self, index: int) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def row(self, index: int) -> tuple:  # pragma: no cover
        raise NotImplementedError

    def take(self, rows: np.ndarray) -> list[np.ndarray]:
        """Reconstruct the given rows, returned column-wise."""
        return [self.column(i)[rows] for i in range(len(self.names))]

    @property
    def nbytes(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class ColumnLayout(Layout):
    """Pure DSM: a list of independent column arrays."""

    names: list[str]
    dtypes: list[DataType]
    arrays: list[np.ndarray]

    def __post_init__(self) -> None:
        lengths = {len(a) for a in self.arrays}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged column layout: lengths {sorted(lengths)}")

    @classmethod
    def from_columns(
        cls, names: Sequence[str], dtypes: Sequence[DataType], arrays: Sequence[np.ndarray]
    ) -> "ColumnLayout":
        return cls(list(names), list(dtypes), [np.asarray(a) for a in arrays])

    def __len__(self) -> int:
        return len(self.arrays[0]) if self.arrays else 0

    def column(self, index: int) -> np.ndarray:
        return self.arrays[index]

    def row(self, index: int) -> tuple:
        return tuple(a[index] for a in self.arrays)

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.arrays)


@dataclass
class RowLayout(Layout):
    """Pure NSM: one structured array, attributes adjacent per tuple."""

    names: list[str]
    dtypes: list[DataType]
    records: np.ndarray

    @classmethod
    def from_columns(
        cls, names: Sequence[str], dtypes: Sequence[DataType], arrays: Sequence[np.ndarray]
    ) -> "RowLayout":
        struct = np.dtype([(n, _np_dtype(t)) for n, t in zip(names, dtypes)])
        records = np.empty(len(arrays[0]) if arrays else 0, dtype=struct)
        for name, arr in zip(names, arrays):
            records[name] = arr
        return cls(list(names), list(dtypes), records)

    def __len__(self) -> int:
        return len(self.records)

    def column(self, index: int) -> np.ndarray:
        # NSM pays a gather to produce a contiguous vector — deliberately
        # reflected here by the copy.
        return np.ascontiguousarray(self.records[self.names[index]])

    def row(self, index: int) -> tuple:
        return tuple(self.records[index])

    @property
    def nbytes(self) -> int:
        return self.records.nbytes


@dataclass
class PAXLayout(Layout):
    """PAX: pages of ``page_rows`` tuples, columnar inside each page."""

    names: list[str]
    dtypes: list[DataType]
    pages: list[list[np.ndarray]]
    page_rows: int
    total_rows: int

    @classmethod
    def from_columns(
        cls,
        names: Sequence[str],
        dtypes: Sequence[DataType],
        arrays: Sequence[np.ndarray],
        page_rows: int = 4096,
    ) -> "PAXLayout":
        if page_rows <= 0:
            raise ExecutionError("page_rows must be positive")
        n = len(arrays[0]) if arrays else 0
        pages = []
        for start in range(0, n, page_rows):
            end = min(start + page_rows, n)
            pages.append([np.asarray(a[start:end]) for a in arrays])
        return cls(list(names), list(dtypes), pages, page_rows, n)

    def __len__(self) -> int:
        return self.total_rows

    def column(self, index: int) -> np.ndarray:
        if not self.pages:
            return np.empty(0)
        return np.concatenate([page[index] for page in self.pages])

    def row(self, index: int) -> tuple:
        page, off = divmod(index, self.page_rows)
        return tuple(mini[off] for mini in self.pages[page])

    @property
    def nbytes(self) -> int:
        return sum(mini.nbytes for page in self.pages for mini in page)


LAYOUTS = {
    "column": ColumnLayout,
    "row": RowLayout,
    "pax": PAXLayout,
}


def build_layout(
    kind: str,
    names: Sequence[str],
    dtypes: Sequence[DataType],
    arrays: Sequence[np.ndarray],
    **kwargs,
) -> Layout:
    """Factory over :data:`LAYOUTS` (used by the adaptive-kernel bench)."""
    try:
        cls = LAYOUTS[kind]
    except KeyError:
        raise ExecutionError(f"unknown layout {kind!r}; expected one of {sorted(LAYOUTS)}")
    return cls.from_columns(names, dtypes, arrays, **kwargs)
