"""Fully-loaded typed columns.

A :class:`Column` is the unit of storage the execution engine scans: a
named, typed, immutable-by-convention NumPy array.  Vectorized predicate
and aggregate evaluation over these arrays is what makes the "hot DB"
curves of the paper's figures fast relative to re-parsing flat files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.flatfile.schema import DataType


@dataclass
class Column:
    """One fully materialized attribute."""

    name: str
    dtype: DataType
    values: np.ndarray

    def __post_init__(self) -> None:
        expected = self.dtype.numpy_dtype
        if self.values.dtype != expected:
            try:
                self.values = self.values.astype(expected)
            except (TypeError, ValueError) as exc:
                raise ExecutionError(
                    f"column {self.name!r}: cannot store {self.values.dtype} as {self.dtype}"
                ) from exc

    def __len__(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        """Resident size; object (string) columns are estimated."""
        if self.dtype is DataType.STRING:
            # Rough but stable estimate: pointer + average payload.
            if len(self.values) == 0:
                return 0
            sample = self.values[: min(len(self.values), 256)]
            avg = sum(len(str(v)) for v in sample) / len(sample)
            return int(len(self.values) * (8 + avg))
        return self.values.nbytes

    def take(self, indices: np.ndarray) -> "Column":
        return Column(self.name, self.dtype, self.values[indices])

    def slice(self, start: int, end: int) -> "Column":
        return Column(self.name, self.dtype, self.values[start:end])
