"""Half-open integer interval sets — the row-id "table of contents".

Section 3.1.2 of the paper notes that partial loading needs "a table of
contents so that we know what portions of a column are loaded".  The
row-id half of that table of contents is this class: a set of non-negative
integers stored as sorted, coalesced, non-overlapping ``[start, end)``
intervals.

The implementation favours clarity over asymptotic heroics: interval lists
here hold at most a handful of entries per column (loads happen in large
chunks), so linear merges are plenty and are easy to verify by property
tests (invariant: sorted, coalesced, disjoint, non-empty intervals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


@dataclass
class IntervalSet:
    """A set of ints represented as sorted disjoint half-open intervals."""

    intervals: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.intervals:
            self.intervals = _normalize(self.intervals)

    # ---------------------------------------------------------- construction

    @classmethod
    def from_range(cls, start: int, end: int) -> "IntervalSet":
        if end <= start:
            return cls([])
        return cls([(start, end)])

    @classmethod
    def from_indices(cls, indices: Iterable[int]) -> "IntervalSet":
        """Build from arbitrary (possibly unsorted) row ids."""
        arr = np.unique(np.fromiter(indices, dtype=np.int64))
        if arr.size == 0:
            return cls([])
        breaks = np.nonzero(np.diff(arr) > 1)[0]
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [arr.size - 1]))
        return cls([(int(arr[s]), int(arr[e]) + 1) for s, e in zip(starts, ends)])

    # ----------------------------------------------------------- predicates

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def __len__(self) -> int:
        """Number of integers (not intervals) in the set."""
        return sum(e - s for s, e in self.intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self.intervals == other.intervals

    def __contains__(self, idx: int) -> bool:
        return self._find(idx) is not None

    def _find(self, idx: int) -> int | None:
        """Index of the interval containing ``idx``, if any (binary search)."""
        lo, hi = 0, len(self.intervals)
        while lo < hi:
            mid = (lo + hi) // 2
            s, e = self.intervals[mid]
            if idx < s:
                hi = mid
            elif idx >= e:
                lo = mid + 1
            else:
                return mid
        return None

    def covers(self, start: int, end: int) -> bool:
        """True when every integer in ``[start, end)`` is in the set."""
        if end <= start:
            return True
        i = self._find(start)
        return i is not None and self.intervals[i][1] >= end

    def covers_set(self, other: "IntervalSet") -> bool:
        return all(self.covers(s, e) for s, e in other.intervals)

    # ----------------------------------------------------------- operations

    def add(self, start: int, end: int) -> None:
        """In-place union with ``[start, end)``."""
        if end <= start:
            return
        self.intervals = _normalize(self.intervals + [(start, end)])

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(_normalize(self.intervals + other.intervals))

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self - other`` (what is still missing)."""
        result: list[tuple[int, int]] = []
        for s, e in self.intervals:
            pieces = [(s, e)]
            for os, oe in other.intervals:
                next_pieces: list[tuple[int, int]] = []
                for ps, pe in pieces:
                    if oe <= ps or os >= pe:
                        next_pieces.append((ps, pe))
                        continue
                    if ps < os:
                        next_pieces.append((ps, os))
                    if oe < pe:
                        next_pieces.append((oe, pe))
                pieces = next_pieces
                if not pieces:
                    break
            result.extend(pieces)
        return IntervalSet(result)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        result: list[tuple[int, int]] = []
        i = j = 0
        a, b = self.intervals, other.intervals
        while i < len(a) and j < len(b):
            s = max(a[i][0], b[j][0])
            e = min(a[i][1], b[j][1])
            if s < e:
                result.append((s, e))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    # ------------------------------------------------------------ iteration

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.intervals)

    def indices(self) -> np.ndarray:
        """Materialize all member integers as an int64 array."""
        if not self.intervals:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.arange(s, e, dtype=np.int64) for s, e in self.intervals])

    def mask(self, n: int) -> np.ndarray:
        """Boolean membership mask over ``range(n)``."""
        out = np.zeros(n, dtype=bool)
        for s, e in self.intervals:
            out[max(0, s) : min(n, e)] = True
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"[{s},{e})" for s, e in self.intervals)
        return f"IntervalSet({body})"


def _normalize(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort, drop empties, coalesce overlapping/adjacent intervals."""
    items = sorted((s, e) for s, e in intervals if e > s)
    out: list[tuple[int, int]] = []
    for s, e in items:
        if out and s <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], e))
        else:
            out.append((s, e))
    return out
