"""Persistent adaptive store: learned state that survives restarts.

Everything the engine learns about a flat file — the positional map, the
partition plan, the (possibly widened) schema, and fully loaded column
arrays — is derived state: expensive to acquire, free to throw away, and
deterministic given the file's bytes.  This module makes that state
*addressable*: one on-disk entry per source file, keyed by the same
content-probing :class:`~repro.flatfile.files.FileFingerprint` that
drives in-memory auto-invalidation, so a fresh engine (or a co-located
worker) starts restart-warm instead of re-paying the cold scan the
paper's Figure 1 amortizes.

Layout (one entry directory per source path, under ``store_dir``)::

    <store_dir>/<stem>-<path-digest>/
        manifest.json       # fingerprint, schema, posmap + column index
        pm_rows.bin         # int64 row-start offsets
        pm_s<j>.bin         # int64 field-start offsets of column j
        pm_e<j>.bin         # int64 field-end offsets of column j
        col_<i>.bin         # numeric column i, little-endian (memmapped)
        col_<i>.off.bin     # string column i: int64 char offsets (n+1)
        col_<i>.blob.bin    # string column i: UTF-8 payload

The format deliberately extends :class:`~repro.storage.binarystore.
BinaryStore`'s manifest + per-column layout (raw little-endian arrays, a
JSON manifest naming them) rather than inventing a second one.

Invariants
----------

* **Fingerprint-keyed.**  The manifest records the full fingerprint of
  the source file (size, mtime_ns, inode, head/tail content probe).  A
  restore compares it against the fingerprint captured *before* any raw
  read; any mismatch — including a same-size forged-mtime rewrite, which
  the content probe catches — deletes the entry and reports a miss.
* **Crash-safe.**  Every file is written to a temp name and
  ``os.replace``\\ d into place; the manifest is written last.  A crash
  at any point leaves either the old complete entry or an orphan the
  reader ignores — never a torn entry.  Corruption (truncated arrays,
  garbage manifests) is detected by size validation and reported as a
  cold miss, never a query error.
* **Shared pages.**  Numeric columns restore as read-only ``np.memmap``
  arrays: co-located engines and parallel workers mapping the same entry
  share one physical copy of the pages, and "evicting" a mapped column
  just drops the mapping — the file stays for the next engine.  String
  columns cannot be object-dtype-mapped and restore onto the heap.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.faults import FaultPlan
from repro.flatfile.files import FileFingerprint, detect_tail_append
from repro.flatfile.positions import PositionalMap
from repro.flatfile.schema import DataType
from repro.storage.binarystore import atomic_write_bytes

if TYPE_CHECKING:  # import would be circular at runtime (core -> storage)
    from repro.core.partitions import PartitionIndex
    from repro.core.zonemaps import ZoneMapIndex
    from repro.storage.catalog import TableEntry

_VERSION = 1

_ITEMSIZE = 8  # int64 / float64; the only numeric widths the engine has


@dataclass
class PersistedState:
    """A restartable snapshot of one table entry's learned state."""

    source: Path
    fingerprint: FileFingerprint
    nrows: int
    has_header: bool
    #: ``(name, DataType.value)`` in file order — the *widened* schema.
    schema: list[tuple[str, str]]
    positional_map: PositionalMap
    partitions: "PartitionIndex | None"
    #: Fully loaded columns only, keyed by schema-cased name.
    columns: dict[str, np.ndarray]
    #: Per-zone min/max/null statistics (None when none were learned).
    zone_maps: "ZoneMapIndex | None" = None

    @classmethod
    def from_entry(
        cls, entry: "TableEntry", fingerprint: FileFingerprint
    ) -> "PersistedState":
        """Snapshot an entry (caller holds at least the table read lock).

        Arrays are captured by reference: loaded column values and learned
        offsets are append-only/immutable by convention, and numpy
        refcounting keeps them alive even if the store evicts the column
        while the background writer is still serializing it.
        """
        pm = entry.positional_map
        columns: dict[str, np.ndarray] = {}
        if entry.table is not None:
            for pc in entry.table.columns.values():
                if pc.values is not None and pc.is_fully_loaded:
                    columns[pc.name] = pc.values
        return cls(
            source=entry.file.path,
            fingerprint=fingerprint,
            nrows=entry.table.nrows if entry.table is not None else 0,
            has_header=entry.has_header,
            schema=[(c.name, c.dtype.value) for c in entry.ensure_schema().columns],
            positional_map=PositionalMap(
                nrows=pm.nrows,
                row_offsets=pm.row_offsets,
                field_offsets=dict(pm.field_offsets),
                field_ends=dict(pm.field_ends),
                text_geometry=pm.text_geometry,
            ),
            partitions=entry.partitions,
            columns=columns,
            zone_maps=(
                entry.zone_maps.snapshot() if entry.zone_maps is not None else None
            ),
        )


@dataclass
class LoadOutcome:
    """Result of a restore probe: a state, a plain miss, or a stale hit."""

    state: PersistedState | None
    #: True when an entry existed but its fingerprint mismatched the
    #: current file (the entry has been deleted).
    invalidated: bool = False
    #: True when the fingerprint mismatch was a pure tail-append: the
    #: state is valid for a byte-identical *prefix* of the live file and
    #: carries the stored (old) fingerprint; the engine must extend it
    #: over the appended region before serving new rows.  The on-disk
    #: entry is kept (re-branded by the next persist), not deleted.
    appended: bool = False


@dataclass
class PersistentStoreStats:
    """I/O accounting for the persistent store."""

    bytes_written: int = 0
    bytes_read: int = 0
    entries_written: int = 0
    entries_restored: int = 0


# ---------------------------------------------------------------------------
# string-column codec (object dtype cannot be memmapped)
# ---------------------------------------------------------------------------


def encode_strings(values: np.ndarray) -> tuple[np.ndarray, bytes]:
    """``(char_offsets[n+1], utf8_blob)`` for an object array of strings."""
    texts = [str(v) for v in values]
    offsets = np.zeros(len(texts) + 1, dtype=np.int64)
    if texts:
        np.cumsum(
            np.fromiter((len(t) for t in texts), dtype=np.int64, count=len(texts)),
            out=offsets[1:],
        )
    return offsets, "".join(texts).encode("utf-8")


def decode_strings(offsets: np.ndarray, blob: bytes) -> np.ndarray:
    """Inverse of :func:`encode_strings`: object array of ``str``."""
    text = blob.decode("utf-8")
    bounds = offsets.tolist()
    if bounds[-1] != len(text):
        raise ValueError("string blob does not match its offsets")
    out = np.empty(len(bounds) - 1, dtype=object)
    for i in range(len(out)):
        out[i] = text[bounds[i] : bounds[i + 1]]
    return out


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


@dataclass
class PersistentStore:
    """Fingerprint-keyed on-disk cache of learned per-file state."""

    directory: Path
    stats: PersistentStoreStats = field(default_factory=PersistentStoreStats)
    #: Deterministic fault injection (None in production: checks no-op).
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -------------------------------------------------------------- paths

    def entry_dir(self, source: Path | str) -> Path:
        """The entry directory for one source file path.

        Keyed by the *resolved* path so every engine pointing at the same
        file — however spelled — lands on the same entry; a short
        sanitized stem keeps the directory humanly inspectable.
        """
        resolved = str(Path(source).resolve())
        digest = hashlib.blake2b(resolved.encode(), digest_size=8).hexdigest()
        stem = re.sub(r"[^A-Za-z0-9._-]", "_", Path(source).name)[:40] or "entry"
        return self.directory / f"{stem}-{digest}"

    # ------------------------------------------------------------- writing

    def save(self, state: PersistedState) -> None:
        """Persist a snapshot crash-safely; incremental where possible.

        Array files already named by a same-fingerprint manifest are
        reused (learned state is deterministic given the file's bytes),
        so persisting a newly loaded column does not rewrite its
        siblings.  The manifest is replaced last, atomically.
        """
        if self.fault_plan is not None:
            self.fault_plan.check("persist.write")
        edir = self.entry_dir(state.source)
        fp_manifest = state.fingerprint.as_manifest()
        old = self._read_manifest(edir)
        if old.get("fingerprint") != fp_manifest:
            self._wipe(edir)
            old = {}
        edir.mkdir(parents=True, exist_ok=True)
        old_pm = old.get("positional_map") or {}
        old_cols = old.get("columns") or {}

        pm = state.positional_map
        pm_manifest: dict = {
            "nrows": pm.nrows,
            "text_geometry": list(pm.text_geometry) if pm.text_geometry else None,
            "row_offsets": None,
            "columns": {},
        }
        if pm.row_offsets is not None:
            pm_manifest["row_offsets"] = self._put_array(
                edir, "pm_rows.bin", pm.row_offsets, old_pm.get("row_offsets")
            )
        old_pm_cols = old_pm.get("columns") or {}
        for col in pm.known_columns():
            if col not in pm.field_ends:
                continue  # starts without ends cannot feed the selective path
            starts, ends = pm.slices_for(col)
            known = old_pm_cols.get(str(col)) or {}
            pm_manifest["columns"][str(col)] = {
                "starts": self._put_array(
                    edir, f"pm_s{col}.bin", starts, known.get("starts")
                ),
                "ends": self._put_array(
                    edir, f"pm_e{col}.bin", ends, known.get("ends")
                ),
            }

        index_of = {name.lower(): i for i, (name, _) in enumerate(state.schema)}
        col_manifest: dict = {}
        for name, values in state.columns.items():
            i = index_of[name.lower()]
            dtype = DataType(state.schema[i][1])
            known = old_cols.get(name.lower()) or {}
            if dtype.is_numeric:
                data = np.ascontiguousarray(values, dtype=dtype.numpy_dtype)
                col_manifest[name.lower()] = {
                    "name": name,
                    "dtype": dtype.value,
                    "file": self._put_array(
                        edir, f"col_{i}.bin", data, known.get("file")
                    ),
                }
            else:
                entry = {"name": name, "dtype": dtype.value}
                if (
                    known.get("dtype") == dtype.value
                    and isinstance(known.get("blob_bytes"), int)
                    and self._have(
                        edir, known.get("offsets"), (len(values) + 1) * _ITEMSIZE
                    )
                    and self._have(edir, known.get("blob"), known["blob_bytes"])
                ):
                    entry.update(
                        offsets=known["offsets"],
                        blob=known["blob"],
                        blob_bytes=known["blob_bytes"],
                    )
                else:
                    offsets, blob = encode_strings(values)
                    entry["offsets"] = self._put_array(
                        edir, f"col_{i}.off.bin", offsets, None
                    )
                    atomic_write_bytes(edir / f"col_{i}.blob.bin", blob)
                    self.stats.bytes_written += len(blob)
                    entry["blob"] = f"col_{i}.blob.bin"
                    entry["blob_bytes"] = len(blob)
                col_manifest[name.lower()] = entry

        manifest = {
            "version": _VERSION,
            "source": str(Path(state.source).resolve()),
            "fingerprint": fp_manifest,
            "nrows": state.nrows,
            "has_header": state.has_header,
            "schema": [[name, dtype] for name, dtype in state.schema],
            "positional_map": pm_manifest,
            "partitions": (
                state.partitions.as_manifest() if state.partitions else None
            ),
            "zone_maps": (
                state.zone_maps.as_manifest() if state.zone_maps else None
            ),
            "columns": col_manifest,
        }
        atomic_write_bytes(
            edir / "manifest.json",
            json.dumps(manifest, ensure_ascii=False).encode("utf-8"),
        )
        self.stats.entries_written += 1

    def _put_array(
        self, edir: Path, filename: str, values: np.ndarray, known: str | None
    ) -> str:
        """Write one array unless the old manifest already vouches for it."""
        data = np.ascontiguousarray(values)
        if known == filename and self._have(edir, filename, data.nbytes):
            return filename
        atomic_write_bytes(edir / filename, data.tobytes())
        self.stats.bytes_written += data.nbytes
        return filename

    @staticmethod
    def _have(edir: Path, filename: str | None, expected_bytes: int) -> bool:
        if not filename:
            return False
        try:
            return (edir / filename).stat().st_size == expected_bytes
        except OSError:
            return False

    # ------------------------------------------------------------- reading

    def load(
        self, source: Path | str, fingerprint: FileFingerprint
    ) -> LoadOutcome:
        """Restore the entry for ``source``, validating its fingerprint.

        ``fingerprint`` must be captured from the live file *before* any
        raw read, so restored state carries the pre-read identity (the
        same branding rule as cold loads).  Any damage — garbage
        manifest, missing or mis-sized array file — is a plain miss.
        """
        if self.fault_plan is not None:
            self.fault_plan.check("persist.read")
        edir = self.entry_dir(source)
        manifest = self._read_manifest(edir)
        if not manifest or manifest.get("version") != _VERSION:
            return LoadOutcome(None)
        if manifest.get("fingerprint") != fingerprint.as_manifest():
            stored = self._stored_fingerprint(manifest)
            if stored is not None and detect_tail_append(
                source, stored, fingerprint
            ):
                # Appends aren't rewrites: the stored state describes a
                # byte-identical prefix of the live file.  Re-brand the
                # entry instead of deleting it — materialize under the
                # *stored* fingerprint and let the engine extend the
                # state over the appended region (the next persist then
                # rewrites the manifest under the new fingerprint).
                try:
                    state = self._materialize(edir, manifest, source, stored)
                except (OSError, ValueError, KeyError, TypeError):
                    self._wipe(edir)
                    return LoadOutcome(None, invalidated=True)
                self.stats.entries_restored += 1
                return LoadOutcome(state, appended=True)
            self._wipe(edir)
            return LoadOutcome(None, invalidated=True)
        try:
            state = self._materialize(edir, manifest, source, fingerprint)
        except (OSError, ValueError, KeyError, TypeError):
            return LoadOutcome(None)
        self.stats.entries_restored += 1
        return LoadOutcome(state)

    def _materialize(
        self,
        edir: Path,
        manifest: dict,
        source: Path | str,
        fingerprint: FileFingerprint,
    ) -> PersistedState:
        from repro.core.partitions import PartitionIndex

        nrows = int(manifest["nrows"])
        schema = [(str(n), str(d)) for n, d in manifest["schema"]]
        for _, dtype in schema:
            DataType(dtype)  # validates

        pm_manifest = manifest.get("positional_map") or {}
        pm = PositionalMap()
        pm_nrows = pm_manifest.get("nrows")
        if pm_manifest.get("row_offsets"):
            pm.record_row_offsets(
                self._mapped_int64(edir, pm_manifest["row_offsets"], pm_nrows)
            )
        for col, files in (pm_manifest.get("columns") or {}).items():
            pm.record_field_offsets(
                int(col),
                self._mapped_int64(edir, files["starts"], pm_nrows),
                self._mapped_int64(edir, files["ends"], pm_nrows),
            )
        geometry = pm_manifest.get("text_geometry")
        if geometry is not None:
            pm.record_text_geometry(int(geometry[0]), int(geometry[1]))

        partitions = None
        if manifest.get("partitions"):
            partitions = PartitionIndex.from_manifest(manifest["partitions"])

        zone_maps = None
        if manifest.get("zone_maps"):
            from repro.core.zonemaps import ZoneMapIndex

            zone_maps = ZoneMapIndex.from_manifest(manifest["zone_maps"])

        columns: dict[str, np.ndarray] = {}
        for entry in (manifest.get("columns") or {}).values():
            name = str(entry["name"])
            dtype = DataType(entry["dtype"])
            if dtype.is_numeric:
                path = self._checked(edir, entry["file"], nrows * _ITEMSIZE)
                values = np.memmap(path, dtype=dtype.numpy_dtype, mode="r")
            else:
                off_path = self._checked(
                    edir, entry["offsets"], (nrows + 1) * _ITEMSIZE
                )
                blob_path = self._checked(
                    edir, entry["blob"], int(entry["blob_bytes"])
                )
                offsets = np.fromfile(off_path, dtype=np.int64)
                values = decode_strings(offsets, blob_path.read_bytes())
                self.stats.bytes_read += offsets.nbytes + int(entry["blob_bytes"])
            columns[name] = values

        return PersistedState(
            source=Path(source),
            fingerprint=fingerprint,
            nrows=nrows,
            has_header=bool(manifest["has_header"]),
            schema=schema,
            positional_map=pm,
            partitions=partitions,
            columns=columns,
            zone_maps=zone_maps,
        )

    def _mapped_int64(self, edir: Path, filename: str, nrows) -> np.ndarray:
        expected = int(nrows) * _ITEMSIZE
        return np.memmap(
            self._checked(edir, filename, expected), dtype=np.int64, mode="r"
        )

    @staticmethod
    def _checked(edir: Path, filename: str, expected_bytes: int) -> Path:
        """Resolve an entry-local file, rejecting damage and path tricks."""
        name = str(filename)
        if "/" in name or name.startswith("."):
            raise ValueError(f"illegal manifest filename {name!r}")
        path = edir / name
        if path.stat().st_size != int(expected_bytes):
            raise ValueError(f"{name}: size mismatch (truncated or corrupt)")
        return path

    @staticmethod
    def _stored_fingerprint(manifest: dict) -> FileFingerprint | None:
        """The manifest's recorded fingerprint, or None if malformed."""
        try:
            return FileFingerprint.from_manifest(manifest["fingerprint"])
        except (KeyError, TypeError, ValueError):
            return None

    def _read_manifest(self, edir: Path) -> dict:
        try:
            manifest = json.loads((edir / "manifest.json").read_text("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return {}
        return manifest if isinstance(manifest, dict) else {}

    # ------------------------------------------------------ invalidation

    def invalidate(self, source: Path | str) -> bool:
        """Drop the entry for ``source``; True when one existed."""
        edir = self.entry_dir(source)
        existed = (edir / "manifest.json").exists()
        self._wipe(edir)
        return existed

    def clear(self) -> int:
        """Drop every entry; returns the number of entries removed."""
        removed = 0
        for edir in self.directory.iterdir():
            if edir.is_dir():
                removed += 1 if (edir / "manifest.json").exists() else 0
                self._wipe(edir)
        return removed

    @staticmethod
    def _wipe(edir: Path) -> None:
        if not edir.exists():
            return
        # Manifest first: a concurrent reader that loses the race sees a
        # missing manifest (a miss), never a manifest naming gone files.
        # Races with a concurrent writer are tolerated, not fought: the
        # writer re-validates by fingerprint before its own manifest lands.
        try:
            (edir / "manifest.json").unlink(missing_ok=True)
            for f in edir.iterdir():
                f.unlink(missing_ok=True)
            edir.rmdir()
        except OSError:
            pass

    # --------------------------------------------------------- inspection

    def entries(self) -> list[dict]:
        """One summary dict per valid entry (for ``repro cache``)."""
        out = []
        if not self.directory.exists():
            return out
        for edir in sorted(self.directory.iterdir()):
            if not edir.is_dir():
                continue
            manifest = self._read_manifest(edir)
            if not manifest:
                continue
            out.append(
                {
                    "source": manifest.get("source", "?"),
                    "nrows": manifest.get("nrows"),
                    "columns": sorted(manifest.get("columns") or {}),
                    "positional_map_columns": sorted(
                        int(c)
                        for c in (manifest.get("positional_map") or {}).get(
                            "columns", {}
                        )
                    ),
                    "fingerprint_size": (manifest.get("fingerprint") or {}).get(
                        "size"
                    ),
                    "bytes_on_disk": sum(
                        f.stat().st_size for f in edir.iterdir() if f.is_file()
                    ),
                    "dir": str(edir),
                }
            )
        return out

    def bytes_on_disk(self) -> int:
        return sum(
            f.stat().st_size for f in self.directory.rglob("*") if f.is_file()
        )
