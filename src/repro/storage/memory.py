"""Adaptive-store memory budget and eviction (paper section 5.1.3).

The paper frames loaded data as disposable: "data parts loaded via adaptive
loading ... may be thrown away at any time.  The only cost is that of
having to reload this data part if it is needed again in the future."

:class:`MemoryManager` enforces a byte budget over registered fragments
(one fragment = one partial column).  When a charge would exceed the
budget, least-recently-used fragments are dropped — via the eviction
callback their owner registered — until the charge fits.  A fragment larger
than the whole budget is admitted alone and evicted as soon as anything
else needs room; refusing it outright would make queries unanswerable,
which the paper never allows (robustness, section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class FragmentInfo:
    """Book-keeping for one evictable fragment."""

    key: tuple[str, str]
    nbytes: int
    last_used: int
    dropper: Callable[[], None]
    pinned: bool = False


@dataclass
class MemoryStats:
    """Eviction activity counters."""

    evictions: int = 0
    bytes_evicted: int = 0
    peak_bytes: int = 0


@dataclass
class MemoryManager:
    """LRU/FIFO budget manager over adaptive-store fragments."""

    budget_bytes: int | None = None
    policy: str = "lru"
    fragments: dict[tuple[str, str], FragmentInfo] = field(default_factory=dict)
    stats: MemoryStats = field(default_factory=MemoryStats)
    _clock: int = 0

    # ------------------------------------------------------------- charges

    @property
    def resident_bytes(self) -> int:
        return sum(f.nbytes for f in self.fragments.values())

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def register(
        self,
        key: tuple[str, str],
        nbytes: int,
        dropper: Callable[[], None],
        pinned: bool = False,
    ) -> None:
        """Register or resize a fragment and make room for it.

        ``dropper`` is called (outside any lock; the engine is
        single-writer) when the manager decides to evict the fragment; it
        must release the owner's data so a future query reloads it.
        """
        tick = self._tick()
        existing = self.fragments.get(key)
        if existing is not None:
            existing.nbytes = nbytes
            # Under FIFO, ``last_used`` is the insertion order and must
            # survive resizes — refreshing it here would silently turn
            # FIFO into LRU for any fragment that grows.
            if self.policy == "lru":
                existing.last_used = tick
            existing.dropper = dropper
            existing.pinned = pinned
        else:
            self.fragments[key] = FragmentInfo(key, nbytes, tick, dropper, pinned)
        self._enforce(exclude=key)
        self.stats.peak_bytes = max(self.stats.peak_bytes, self.resident_bytes)

    def touch(self, key: tuple[str, str]) -> None:
        frag = self.fragments.get(key)
        if frag is not None and self.policy == "lru":
            frag.last_used = self._tick()

    def forget(self, key: tuple[str, str]) -> None:
        """Remove book-keeping without calling the dropper (owner dropped)."""
        self.fragments.pop(key, None)

    # -------------------------------------------------------------- pinning

    def pin(self, key: tuple[str, str]) -> None:
        """Protect a fragment from eviction until :meth:`release_pins`.

        The engine pins every fragment the *current* query needs so that
        loading one of the query's columns can never evict another: a query
        must always be able to hold its own working set (robustness, paper
        section 5.5).
        """
        frag = self.fragments.get(key)
        if frag is not None:
            frag.pinned = True

    def release_pins(self) -> None:
        """Unpin everything and re-enforce the budget."""
        for frag in self.fragments.values():
            frag.pinned = False
        self._enforce()

    # ------------------------------------------------------------ eviction

    def _enforce(self, exclude: tuple[str, str] | None = None) -> None:
        if self.budget_bytes is None:
            return
        while self.resident_bytes > self.budget_bytes:
            victims = [
                f
                for f in self.fragments.values()
                if not f.pinned and f.key != exclude
            ]
            if not victims:
                # Only the newcomer (or pinned data) remains: admit it and
                # stop — a query must always be able to hold its own data.
                break
            victim = min(victims, key=lambda f: f.last_used)
            del self.fragments[victim.key]
            self.stats.evictions += 1
            self.stats.bytes_evicted += victim.nbytes
            victim.dropper()

    def enforce(self) -> None:
        """Re-check the budget (called after pins are released)."""
        self._enforce(exclude=None)
