"""Adaptive-store memory budget and eviction (paper section 5.1.3).

The paper frames loaded data as disposable: "data parts loaded via adaptive
loading ... may be thrown away at any time.  The only cost is that of
having to reload this data part if it is needed again in the future."

:class:`MemoryManager` enforces a byte budget over registered fragments
(one fragment = one partial column, or one cached query result).  When a
charge would exceed the budget, least-recently-used fragments are dropped
— via the eviction callback their owner registered — until the charge
fits.  A fragment larger than the whole budget is admitted alone and
evicted as soon as anything else needs room; refusing it outright would
make queries unanswerable, which the paper never allows (robustness,
section 5.5).

Thread safety and re-entrancy
-----------------------------

The manager is shared by every table of a concurrently-serving engine, so
all bookkeeping runs under one re-entrant lock.  Eviction callbacks fire
*while the lock is held* and are allowed to re-enter the manager (a
fragment owner's dropper may ``forget`` siblings or ``register`` a
replacement): the re-entrant lock makes the nested call safe, and a
nested ``_enforce`` is deferred to the outermost one — which re-reads
``resident_bytes`` on every loop iteration, so charges added by a
callback are still driven back under budget before the outer call
returns.

Pins are **counted**, not boolean: concurrent queries that pin the same
fragment each hold one pin, and a fragment is evictable only when every
query that pinned it has released its pin.  This is what makes "a query
can always hold its own working set" true under concurrency — one
query's release must not expose a sibling query's working set to
eviction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable


@dataclass
class FragmentInfo:
    """Book-keeping for one evictable fragment."""

    key: tuple[str, str]
    nbytes: int
    last_used: int
    dropper: Callable[[], None]
    pins: int = 0
    #: Backed by an ``np.memmap`` of the persistent store, not the heap:
    #: the pages are shared with every co-located engine mapping the same
    #: entry and reclaimable by the OS, so they are accounted separately
    #: and never count against (or get evicted for) the heap budget —
    #: evicting a mapped column would drop the mapping, not free heap.
    mapped: bool = False

    @property
    def pinned(self) -> bool:
        return self.pins > 0


@dataclass
class MemoryStats:
    """Eviction activity counters."""

    evictions: int = 0
    bytes_evicted: int = 0
    peak_bytes: int = 0
    peak_mapped_bytes: int = 0


@dataclass
class MemoryManager:
    """LRU/FIFO budget manager over adaptive-store fragments."""

    budget_bytes: int | None = None
    policy: str = "lru"
    fragments: dict[tuple[str, str], FragmentInfo] = field(default_factory=dict)
    stats: MemoryStats = field(default_factory=MemoryStats)
    _clock: int = 0
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    _enforcing: bool = field(default=False, repr=False, compare=False)

    # ------------------------------------------------------------- charges

    @property
    def resident_bytes(self) -> int:
        """Heap bytes under the budget (mapped pages are not heap)."""
        with self._lock:
            return sum(f.nbytes for f in self.fragments.values() if not f.mapped)

    @property
    def mapped_bytes(self) -> int:
        """Bytes served via ``np.memmap`` of the persistent store."""
        with self._lock:
            return sum(f.nbytes for f in self.fragments.values() if f.mapped)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def register(
        self,
        key: tuple[str, str],
        nbytes: int,
        dropper: Callable[[], None],
        pinned: bool = False,
        mapped: bool = False,
    ) -> None:
        """Register or resize a fragment and make room for it.

        ``dropper`` is called (under the manager's re-entrant lock) when
        the manager decides to evict the fragment; it must release the
        owner's data so a future query reloads it, and it may safely
        re-enter the manager.

        ``pinned=True`` adds **one** pin that the caller must release via
        :meth:`unpin` (the engine does this when its query's views are
        built); re-registering an already-pinned fragment with
        ``pinned=True`` adds another pin.

        ``mapped=True`` marks the fragment as memmap-backed: its bytes
        are OS page cache shared across processes, so they are tracked
        separately and neither charge the heap budget nor get chosen as
        heap-pressure eviction victims (dropping the mapping would free
        no budgeted heap).  Explicit invalidation still drops mappings
        through the normal :meth:`forget` path.
        """
        with self._lock:
            tick = self._tick()
            existing = self.fragments.get(key)
            if existing is not None:
                existing.nbytes = nbytes
                # Under FIFO, ``last_used`` is the insertion order and must
                # survive resizes — refreshing it here would silently turn
                # FIFO into LRU for any fragment that grows.
                if self.policy == "lru":
                    existing.last_used = tick
                existing.dropper = dropper
                existing.mapped = mapped
                if pinned:
                    existing.pins += 1
            else:
                self.fragments[key] = FragmentInfo(
                    key, nbytes, tick, dropper, pins=1 if pinned else 0, mapped=mapped
                )
            self._enforce(exclude=key)
            self.stats.peak_bytes = max(self.stats.peak_bytes, self.resident_bytes)
            self.stats.peak_mapped_bytes = max(
                self.stats.peak_mapped_bytes, self.mapped_bytes
            )

    def touch(self, key: tuple[str, str]) -> None:
        with self._lock:
            frag = self.fragments.get(key)
            if frag is not None and self.policy == "lru":
                frag.last_used = self._tick()

    def forget(self, key: tuple[str, str]) -> None:
        """Remove book-keeping without calling the dropper (owner dropped)."""
        with self._lock:
            self.fragments.pop(key, None)

    # -------------------------------------------------------------- pinning

    def pin(self, key: tuple[str, str]) -> bool:
        """Add one pin protecting a fragment from eviction.

        The engine pins every fragment the *current* query needs so that
        loading one of the query's columns can never evict another: a query
        must always be able to hold its own working set (robustness, paper
        section 5.5).  Returns True when the fragment exists (and is now
        pinned); the caller owes a matching :meth:`unpin`.
        """
        with self._lock:
            frag = self.fragments.get(key)
            if frag is None:
                return False
            frag.pins += 1
            return True

    def unpin(self, key: tuple[str, str]) -> None:
        """Release one pin (no-op for unknown/unpinned fragments)."""
        with self._lock:
            frag = self.fragments.get(key)
            if frag is not None and frag.pins > 0:
                frag.pins -= 1

    def unpin_many(self, keys: Iterable[tuple[str, str]], enforce: bool = True) -> None:
        """Release one pin per key, then re-check the budget."""
        with self._lock:
            for key in keys:
                frag = self.fragments.get(key)
                if frag is not None and frag.pins > 0:
                    frag.pins -= 1
            if enforce:
                self._enforce()

    def release_pins(self) -> None:
        """Zero every pin and re-enforce the budget.

        Single-threaded escape hatch (and the pre-concurrency API): with
        parallel queries in flight, prefer matched :meth:`pin` /
        :meth:`unpin` pairs — zeroing pins here would expose another
        query's working set.
        """
        with self._lock:
            for frag in self.fragments.values():
                frag.pins = 0
            self._enforce()

    # ------------------------------------------------------------ eviction

    def _enforce(self, exclude: tuple[str, str] | None = None) -> None:
        """Evict until under budget (lock held by caller).

        Re-entrant calls (a dropper registering/forgetting during
        eviction) return immediately; the outermost loop re-reads the
        resident total every iteration and drives any nested additions
        back under budget itself.
        """
        if self.budget_bytes is None:
            return
        if self._enforcing:
            return
        self._enforcing = True
        try:
            # Only heap fragments count against — or are evicted for —
            # the budget: dropping a mapped fragment would release a
            # shared page mapping, not the heap bytes being enforced.
            while (
                sum(f.nbytes for f in self.fragments.values() if not f.mapped)
                > self.budget_bytes
            ):
                victims = [
                    f
                    for f in self.fragments.values()
                    if f.pins == 0 and f.key != exclude and not f.mapped
                ]
                if not victims:
                    # Only the newcomer (or pinned data) remains: admit it
                    # and stop — a query must always hold its own data.
                    break
                victim = min(victims, key=lambda f: f.last_used)
                del self.fragments[victim.key]
                self.stats.evictions += 1
                self.stats.bytes_evicted += victim.nbytes
                victim.dropper()
        finally:
            self._enforcing = False

    def enforce(self) -> None:
        """Re-check the budget (called after pins are released)."""
        with self._lock:
            self._enforce(exclude=None)
