"""Loaded tables: named collections of (possibly partial) columns.

A :class:`Table` is the adaptive-store image of one attached flat file.
It starts completely empty — attaching a file loads nothing — and fills in
column by column (or fragment by fragment) as queries demand data, which is
the paper's core inversion: *queries* drive loading, not a load utility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.flatfile.schema import TableSchema
from repro.storage.partial import PartialColumn


@dataclass
class Table:
    """Adaptive-store state for one table."""

    name: str
    schema: TableSchema
    nrows: int
    columns: dict[str, PartialColumn] = field(default_factory=dict)

    def column(self, name: str) -> PartialColumn:
        """Get-or-create the partial column for ``name``."""
        key = name.lower()
        if key not in self.columns:
            col_schema = self.schema.column(name)
            self.columns[key] = PartialColumn(
                name=col_schema.name, dtype=col_schema.dtype, nrows=self.nrows
            )
        return self.columns[key]

    def has_column(self, name: str) -> bool:
        try:
            self.schema.index_of(name)
            return True
        except KeyError:
            return False

    def loaded_columns(self) -> list[str]:
        return [c.name for c in self.columns.values() if c.loaded_count > 0]

    def fully_loaded_columns(self) -> list[str]:
        return [c.name for c in self.columns.values() if c.is_fully_loaded]

    @property
    def logical_nbytes(self) -> int:
        return sum(c.logical_nbytes for c in self.columns.values())

    def drop_all(self) -> None:
        """Forget all loaded data (file-edit invalidation, section 5.4)."""
        self.columns.clear()

    def grow(self, new_nrows: int, appended: dict[str, "object"]) -> dict[str, bool]:
        """Grow every column after a pure tail-append to the source file.

        ``appended`` maps lower-cased column names to the parsed values
        of the appended rows.  Returns, per column key, whether the
        column kept its loaded data (fully loaded and extended) or was
        dropped back to cold (see :meth:`PartialColumn.grow`).
        """
        kept = {
            key: pc.grow(new_nrows, appended.get(key))
            for key, pc in self.columns.items()
        }
        self.nrows = new_nrows
        return kept

    def ensure_known(self, names: list[str]) -> None:
        for n in names:
            if not self.has_column(n):
                raise CatalogError(f"table {self.name!r} has no column {n!r}")
